// Tests for the sparse LP substrate: the Markowitz LU kernel, the revised
// simplex against the dense solver (unit cases and randomized property
// tests), basis warm starts, engine auto-selection, and branch & bound
// running dense-vs-sparse and warm-vs-cold.
#include <gtest/gtest.h>

#include <cmath>

#include "device/builders.hpp"
#include "fp/formulation.hpp"
#include "lp/lp_solver.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/dual_simplex.hpp"
#include "lp/sparse/lu.hpp"
#include "lp/sparse/revised_simplex.hpp"
#include "milp/bb.hpp"
#include "model/generator.hpp"
#include "partition/columnar.hpp"
#include "support/rng.hpp"

namespace rfp::lp {
namespace {

using sparse::BasisLu;
using sparse::CscMatrix;
using sparse::DualSimplexSolver;
using sparse::RevisedSimplexSolver;

// ---- LU kernel -------------------------------------------------------------

/// Dense multiply B x (columns of `a` or unit slacks per `basic`).
std::vector<double> multiplyBasis(const CscMatrix& a, const std::vector<int>& basic,
                                  const std::vector<double>& x) {
  std::vector<double> y(static_cast<std::size_t>(a.rows), 0.0);
  for (int p = 0; p < a.rows; ++p) {
    const int b = basic[static_cast<std::size_t>(p)];
    const double xp = x[static_cast<std::size_t>(p)];
    if (b >= a.cols) {
      y[static_cast<std::size_t>(b - a.cols)] += xp;
    } else {
      for (int k = a.ptr[static_cast<std::size_t>(b)]; k < a.ptr[static_cast<std::size_t>(b) + 1]; ++k)
        y[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] +=
            a.val[static_cast<std::size_t>(k)] * xp;
    }
  }
  return y;
}

Model randomSparseModel(Rng& rng, int n, int rows) {
  Model m;
  for (int j = 0; j < n; ++j) m.addContinuous(0, 10, "v");
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    bool any = false;
    for (int j = 0; j < n; ++j) {
      if (rng.nextBelow(3) != 0) continue;
      const long c = rng.nextInt(-5, 6);
      if (c != 0) {
        e += static_cast<double>(c) * Var{j};
        any = true;
      }
    }
    if (!any) e += 1.0 * Var{static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)))};
    m.addConstr(e, Sense::kLessEqual, 100.0);
  }
  return m;
}

TEST(SparseLu, FtranBtranSolveRandomBases) {
  Rng rng(2001);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng.nextBelow(10));
    const int rows = 3 + static_cast<int>(rng.nextBelow(12));
    const Model m = randomSparseModel(rng, n, rows);
    const CscMatrix a = CscMatrix::fromModel(m);
    // Random basis: each row position picks its own slack or a random
    // structural column (duplicates allowed — repair is reported then).
    std::vector<int> basic(static_cast<std::size_t>(rows));
    for (int p = 0; p < rows; ++p)
      basic[static_cast<std::size_t>(p)] =
          rng.nextBool(0.4) ? static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)))
                            : n + p;
    BasisLu lu;
    if (!lu.factorize(a, basic)) {
      // Singular: the reported repair must itself factorize.
      ASSERT_EQ(lu.deficientPositions().size(), lu.unpivotedRows().size());
      for (std::size_t i = 0; i < lu.deficientPositions().size(); ++i)
        basic[static_cast<std::size_t>(lu.deficientPositions()[i])] = n + lu.unpivotedRows()[i];
      ASSERT_TRUE(lu.factorize(a, basic)) << "trial " << trial;
    }
    // FTRAN: B (B^-1 b) == b.
    std::vector<double> b(static_cast<std::size_t>(rows));
    for (double& v : b) v = static_cast<double>(rng.nextInt(-9, 9));
    std::vector<double> w = b;
    lu.ftran(w);
    const std::vector<double> back = multiplyBasis(a, basic, w);
    for (int i = 0; i < rows; ++i)
      EXPECT_NEAR(back[static_cast<std::size_t>(i)], b[static_cast<std::size_t>(i)], 1e-7)
          << "trial " << trial << " row " << i;
    // BTRAN: (B^-T c)^T B == c^T, i.e. for every position p the dual times
    // column p recovers c[p].
    std::vector<double> c(static_cast<std::size_t>(rows));
    for (double& v : c) v = static_cast<double>(rng.nextInt(-9, 9));
    std::vector<double> y = c;
    lu.btran(y);
    for (int p = 0; p < rows; ++p) {
      const int col = basic[static_cast<std::size_t>(p)];
      double dot = 0.0;
      if (col >= a.cols) {
        dot = y[static_cast<std::size_t>(col - a.cols)];
      } else {
        for (int k = a.ptr[static_cast<std::size_t>(col)]; k < a.ptr[static_cast<std::size_t>(col) + 1]; ++k)
          dot += a.val[static_cast<std::size_t>(k)] * y[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])];
      }
      EXPECT_NEAR(dot, c[static_cast<std::size_t>(p)], 1e-7) << "trial " << trial << " pos " << p;
    }
  }
}

TEST(SparseLu, ForrestTomlinUpdateMatchesRefactorization) {
  // Replace one basic column, once via updateColumn and once by
  // refactorizing; both must produce the same B^-1 b.
  Model m;
  for (int j = 0; j < 4; ++j) m.addContinuous(0, 10, "v");
  m.addConstr(2.0 * Var{0} + 1.0 * Var{1}, Sense::kLessEqual, 5);
  m.addConstr(1.0 * Var{1} + 3.0 * Var{2}, Sense::kLessEqual, 7);
  m.addConstr(1.0 * Var{0} + 1.0 * Var{3}, Sense::kLessEqual, 9);
  const CscMatrix a = CscMatrix::fromModel(m);
  std::vector<int> basic{0, 1, 4 + 2};  // x0, x1, slack2
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basic));

  // Enter x3 (column 3) at position 2.
  std::vector<double> alpha(3, 0.0);
  for (int k = a.ptr[3]; k < a.ptr[4]; ++k) alpha[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] = a.val[static_cast<std::size_t>(k)];
  BasisLu::Spike spike;
  lu.ftran(alpha, &spike);
  ASSERT_GT(std::abs(alpha[2]), 1e-9);
  ASSERT_TRUE(lu.updateColumn(2, spike));
  EXPECT_EQ(lu.updateCount(), 1);

  std::vector<int> basic2{0, 1, 3};
  BasisLu lu2;
  ASSERT_TRUE(lu2.factorize(a, basic2));

  const std::vector<double> b{1.0, -2.0, 3.0};
  std::vector<double> via_update = b, via_fresh = b;
  lu.ftran(via_update);
  lu2.ftran(via_fresh);
  for (int p = 0; p < 3; ++p) EXPECT_NEAR(via_update[static_cast<std::size_t>(p)], via_fresh[static_cast<std::size_t>(p)], 1e-9);
}

TEST(SparseLu, ForrestTomlinSurvivesFiftyUpdates) {
  // A long chain of Forrest–Tomlin updates must keep FTRAN and BTRAN in
  // agreement with a fresh factorization of the same basis — this is the
  // property that lets the simplex stretch refactorization intervals to
  // stability triggers only.
  Rng rng(7777);
  const int n = 60;
  const int rows = 70;
  const Model m = randomSparseModel(rng, n, rows);
  const CscMatrix a = CscMatrix::fromModel(m);
  std::vector<int> basic(static_cast<std::size_t>(rows));
  for (int p = 0; p < rows; ++p) basic[static_cast<std::size_t>(p)] = n + p;  // slack basis
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basic));

  std::vector<char> in_basis(static_cast<std::size_t>(n), 0);
  int updates = 0;
  for (int attempt = 0; attempt < 400 && updates < 55; ++attempt) {
    const int c = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    if (in_basis[static_cast<std::size_t>(c)]) continue;
    std::vector<double> alpha(static_cast<std::size_t>(rows), 0.0);
    for (int k = a.ptr[static_cast<std::size_t>(c)]; k < a.ptr[static_cast<std::size_t>(c) + 1]; ++k)
      alpha[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] =
          a.val[static_cast<std::size_t>(k)];
    BasisLu::Spike spike;
    lu.ftran(alpha, &spike);
    // Pivot on the largest entry (mimicking a stable ratio-test choice).
    int p_best = -1;
    for (int p = 0; p < rows; ++p)
      if (p_best < 0 || std::abs(alpha[static_cast<std::size_t>(p)]) >
                            std::abs(alpha[static_cast<std::size_t>(p_best)]))
        p_best = p;
    if (std::abs(alpha[static_cast<std::size_t>(p_best)]) < 1e-6) continue;
    ASSERT_TRUE(lu.updateColumn(p_best, spike)) << "update " << updates;
    const int displaced = basic[static_cast<std::size_t>(p_best)];
    if (displaced < n) in_basis[static_cast<std::size_t>(displaced)] = 0;
    basic[static_cast<std::size_t>(p_best)] = c;
    in_basis[static_cast<std::size_t>(c)] = 1;
    ++updates;

    if (updates % 10 != 0 && updates < 50) continue;
    // FTRAN/BTRAN through the updated factors vs a fresh factorization.
    BasisLu fresh;
    ASSERT_TRUE(fresh.factorize(a, basic)) << "update " << updates;
    std::vector<double> b(static_cast<std::size_t>(rows));
    for (double& v : b) v = static_cast<double>(rng.nextInt(-9, 9));
    std::vector<double> via_update = b, via_fresh = b;
    lu.ftran(via_update);
    fresh.ftran(via_fresh);
    for (int p = 0; p < rows; ++p)
      EXPECT_NEAR(via_update[static_cast<std::size_t>(p)],
                  via_fresh[static_cast<std::size_t>(p)], 1e-6)
          << "ftran after " << updates << " updates, pos " << p;
    std::vector<double> cvec(static_cast<std::size_t>(rows));
    for (double& v : cvec) v = static_cast<double>(rng.nextInt(-9, 9));
    std::vector<double> bt_update = cvec, bt_fresh = cvec;
    lu.btran(bt_update);
    fresh.btran(bt_fresh);
    for (int p = 0; p < rows; ++p)
      EXPECT_NEAR(bt_update[static_cast<std::size_t>(p)],
                  bt_fresh[static_cast<std::size_t>(p)], 1e-6)
          << "btran after " << updates << " updates, pos " << p;
  }
  EXPECT_GE(updates, 50);
  EXPECT_EQ(lu.updateCount(), updates);
}

TEST(SparseLu, HyperSparseSolvesMatchDenseAcrossFtUpdates) {
  // The graph-driven FTRAN/BTRAN must agree with the dense sweeps on the
  // same factors — including after a long Forrest–Tomlin chain, where the
  // eta file participates in the structural reachability pass — and must
  // uphold the IndexedVector contract (values exactly zero off the index).
  Rng rng(5150);
  const int n = 60;
  const int rows = 70;
  const Model m = randomSparseModel(rng, n, rows);
  const CscMatrix a = CscMatrix::fromModel(m);
  std::vector<int> basic(static_cast<std::size_t>(rows));
  for (int p = 0; p < rows; ++p) basic[static_cast<std::size_t>(p)] = n + p;  // slack basis
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basic));

  const auto checkAgainstDense = [&](int updates) {
    for (int rep = 0; rep < 6; ++rep) {
      // 1-2 structural nonzeros: within the hyper-sparse input gate.
      sparse::IndexedVector v;
      v.reset(rows);
      v.set(static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(rows))), 2.0);
      const int extra = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(rows)));
      if (v.val[static_cast<std::size_t>(extra)] == 0.0) v.set(extra, -3.0);
      std::vector<double> dense_in = v.val;

      sparse::IndexedVector fs = v;
      lu.ftranSparse(fs);
      std::vector<double> fd = dense_in;
      lu.ftran(fd);
      std::vector<char> listed(static_cast<std::size_t>(rows), 0);
      for (const int p : fs.idx) listed[static_cast<std::size_t>(p)] = 1;
      for (int p = 0; p < rows; ++p) {
        EXPECT_NEAR(fs.val[static_cast<std::size_t>(p)], fd[static_cast<std::size_t>(p)], 1e-7)
            << "ftran after " << updates << " updates, pos " << p;
        if (!listed[static_cast<std::size_t>(p)]) {
          EXPECT_EQ(fs.val[static_cast<std::size_t>(p)], 0.0)
              << "unlisted entry must be exactly zero, pos " << p;
        }
      }

      sparse::IndexedVector bs = v;
      lu.btranSparse(bs);
      std::vector<double> bd = dense_in;
      lu.btran(bd);
      std::fill(listed.begin(), listed.end(), 0);
      for (const int p : bs.idx) listed[static_cast<std::size_t>(p)] = 1;
      for (int p = 0; p < rows; ++p) {
        EXPECT_NEAR(bs.val[static_cast<std::size_t>(p)], bd[static_cast<std::size_t>(p)], 1e-7)
            << "btran after " << updates << " updates, pos " << p;
        if (!listed[static_cast<std::size_t>(p)]) {
          EXPECT_EQ(bs.val[static_cast<std::size_t>(p)], 0.0)
              << "unlisted entry must be exactly zero, pos " << p;
        }
      }
    }
  };

  checkAgainstDense(0);
  std::vector<char> in_basis(static_cast<std::size_t>(n), 0);
  int updates = 0;
  for (int attempt = 0; attempt < 400 && updates < 50; ++attempt) {
    const int c = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    if (in_basis[static_cast<std::size_t>(c)]) continue;
    std::vector<double> alpha(static_cast<std::size_t>(rows), 0.0);
    for (int k = a.ptr[static_cast<std::size_t>(c)]; k < a.ptr[static_cast<std::size_t>(c) + 1]; ++k)
      alpha[static_cast<std::size_t>(a.idx[static_cast<std::size_t>(k)])] =
          a.val[static_cast<std::size_t>(k)];
    BasisLu::Spike spike;
    lu.ftran(alpha, &spike);
    int p_best = 0;
    for (int p = 1; p < rows; ++p)
      if (std::abs(alpha[static_cast<std::size_t>(p)]) >
          std::abs(alpha[static_cast<std::size_t>(p_best)]))
        p_best = p;
    if (std::abs(alpha[static_cast<std::size_t>(p_best)]) < 1e-6) continue;
    ASSERT_TRUE(lu.updateColumn(p_best, spike)) << "update " << updates;
    const int displaced = basic[static_cast<std::size_t>(p_best)];
    if (displaced < n) in_basis[static_cast<std::size_t>(displaced)] = 0;
    basic[static_cast<std::size_t>(p_best)] = c;
    in_basis[static_cast<std::size_t>(c)] = 1;
    ++updates;
    if (updates % 10 == 0 || updates >= 50) checkAgainstDense(updates);
  }
  EXPECT_GE(updates, 50);
  // Near-unit inputs on a slack-heavy basis must actually take the sparse
  // path — a silent everything-falls-dense regression defeats the kernel.
  const BasisLu::SolveStats& ss = lu.solveStats();
  EXPECT_GT(ss.ftran_sparse, 0);
  EXPECT_GT(ss.btran_sparse, 0);
}

TEST(SparseLu, SteepestEdgeRecurrenceMatchesFromScratchRowNorms) {
  // The Forrest–Goldfarb recurrence the dual engine maintains —
  //   beta_p' = beta_p - 2 (alpha_p / alpha_r) tau_p + (alpha_p / alpha_r)^2 beta_r,
  //   beta_r' = beta_r / alpha_r^2,  with tau = B^-1 rho_r through the OLD
  // factors — must track the exact row norms beta_p = ||B^-T e_p||^2 across
  // a chain of basis changes. This is the weight-exactness contract that
  // lets DualReoptimizer persist weights across warm reoptimizations.
  Rng rng(90210);
  const int n = 40;
  const int rows = 45;
  const Model m = randomSparseModel(rng, n, rows);
  const CscMatrix a = CscMatrix::fromModel(m);
  std::vector<int> basic(static_cast<std::size_t>(rows));
  for (int p = 0; p < rows; ++p) basic[static_cast<std::size_t>(p)] = n + p;
  BasisLu lu;
  ASSERT_TRUE(lu.factorize(a, basic));

  const auto exactBetas = [&]() {
    std::vector<double> beta(static_cast<std::size_t>(rows));
    sparse::IndexedVector rho;
    rho.reset(rows);
    for (int p = 0; p < rows; ++p) {
      rho.clear();
      rho.set(p, 1.0);
      lu.btranSparse(rho);
      double s = 0.0;
      for (const int i : rho.idx)
        s += rho.val[static_cast<std::size_t>(i)] * rho.val[static_cast<std::size_t>(i)];
      beta[static_cast<std::size_t>(p)] = s;
    }
    return beta;
  };

  std::vector<double> beta = exactBetas();  // exact at the starting basis
  std::vector<char> in_basis(static_cast<std::size_t>(n), 0);
  sparse::IndexedVector alpha, rho, tau;
  alpha.reset(rows);
  rho.reset(rows);
  tau.reset(rows);
  int pivots = 0;
  for (int attempt = 0; attempt < 200 && pivots < 12; ++attempt) {
    const int c = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    if (in_basis[static_cast<std::size_t>(c)]) continue;
    alpha.clear();
    for (int k = a.ptr[static_cast<std::size_t>(c)]; k < a.ptr[static_cast<std::size_t>(c) + 1]; ++k)
      alpha.set(a.idx[static_cast<std::size_t>(k)], a.val[static_cast<std::size_t>(k)]);
    BasisLu::Spike spike;
    lu.ftranSparse(alpha, &spike);
    int r = 0;
    for (int p = 1; p < rows; ++p)
      if (std::abs(alpha.val[static_cast<std::size_t>(p)]) >
          std::abs(alpha.val[static_cast<std::size_t>(r)]))
        r = p;
    const double ar = alpha.val[static_cast<std::size_t>(r)];
    if (std::abs(ar) < 1e-4) continue;

    // Recurrence inputs through the factors *before* the update.
    rho.clear();
    rho.set(r, 1.0);
    lu.btranSparse(rho);
    tau.copyFrom(rho);
    lu.ftranSparse(tau);
    const double beta_r = beta[static_cast<std::size_t>(r)];
    for (int p = 0; p < rows; ++p) {
      if (p == r) continue;
      const double q = alpha.val[static_cast<std::size_t>(p)] / ar;
      if (q == 0.0) continue;
      beta[static_cast<std::size_t>(p)] +=
          -2.0 * q * tau.val[static_cast<std::size_t>(p)] + q * q * beta_r;
    }
    beta[static_cast<std::size_t>(r)] = beta_r / (ar * ar);

    ASSERT_TRUE(lu.updateColumn(r, spike)) << "pivot " << pivots;
    const int displaced = basic[static_cast<std::size_t>(r)];
    if (displaced < n) in_basis[static_cast<std::size_t>(displaced)] = 0;
    basic[static_cast<std::size_t>(r)] = c;
    in_basis[static_cast<std::size_t>(c)] = 1;
    ++pivots;

    const std::vector<double> fresh = exactBetas();
    for (int p = 0; p < rows; ++p)
      EXPECT_NEAR(beta[static_cast<std::size_t>(p)], fresh[static_cast<std::size_t>(p)],
                  1e-5 * (1.0 + std::abs(fresh[static_cast<std::size_t>(p)])))
          << "pivot " << pivots << " row " << p;
  }
  EXPECT_GE(pivots, 10);
}

// ---- revised simplex unit cases (mirroring the dense suite) ----------------

TEST(SparseSimplex, TextbookMaximization) {
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x), Sense::kLessEqual, 4);
  m.addConstr(2.0 * y, Sense::kLessEqual, 12);
  m.addConstr(3.0 * x + 2.0 * y, Sense::kLessEqual, 18);
  m.setObjective(3.0 * x + 5.0 * y, ObjSense::kMaximize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.engine, LpEngine::kSparse);
  EXPECT_NEAR(r.objective, 36.0, 1e-7);
  EXPECT_NEAR(r.x[0], 2.0, 1e-7);
  EXPECT_NEAR(r.x[1], 6.0, 1e-7);
}

TEST(SparseSimplex, EqualityAndGreaterRows) {
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  const Var z = m.addContinuous(0, 3, "z");
  m.addConstr(LinExpr(x) + y + z, Sense::kEqual, 10);
  m.addConstr(LinExpr(x) - y, Sense::kGreaterEqual, 2);
  m.setObjective(2.0 * x + 3.0 * y + z, ObjSense::kMinimize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 17.0, 1e-7);
}

TEST(SparseSimplex, BoundFlipsWithFiniteUpperBounds) {
  Model m;
  const Var x = m.addContinuous(0, 1, "x");
  const Var y = m.addContinuous(0, 1, "y");
  const Var z = m.addContinuous(0, 1, "z");
  m.addConstr(LinExpr(x) + y + z, Sense::kLessEqual, 2.5);
  m.setObjective(LinExpr(x) + y + z, ObjSense::kMaximize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 2.5, 1e-7);
}

TEST(SparseSimplex, NegativeLowerBounds) {
  Model m;
  const Var x = m.addContinuous(-5, 0, "x");
  const Var y = m.addContinuous(-4, 4, "y");
  m.addConstr(LinExpr(x) + 2.0 * y, Sense::kGreaterEqual, -3);
  m.setObjective(LinExpr(x) + y, ObjSense::kMinimize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -4.0, 1e-7);
}

TEST(SparseSimplex, DetectsInfeasibility) {
  Model m;
  const Var x = m.addContinuous(0, 1, "x");
  const Var y = m.addContinuous(0, 1, "y");
  m.addConstr(LinExpr(x) + y, Sense::kGreaterEqual, 3);
  EXPECT_EQ(RevisedSimplexSolver().solve(m).status, LpStatus::kInfeasible);
}

TEST(SparseSimplex, DetectsUnboundedness) {
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) - y, Sense::kLessEqual, 1);
  m.setObjective(LinExpr(x) + y, ObjSense::kMaximize);
  EXPECT_EQ(RevisedSimplexSolver().solve(m).status, LpStatus::kUnbounded);
}

TEST(SparseSimplex, DegenerateProblemTerminates) {
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) - y, Sense::kLessEqual, 0);
  m.addConstr(2.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(3.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 4);
  m.setObjective(2.0 * x + y, ObjSense::kMaximize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, 5.0, 1e-7);
}

TEST(SparseSimplex, FreeVariableViaInfiniteBounds) {
  // min x st x >= -7, x free: the sparse engine supports free columns
  // (the dense solver requires finite lower bounds).
  Model m;
  const Var x = m.addContinuous(-kInfinity, kInfinity, "x");
  m.addConstr(LinExpr(x), Sense::kGreaterEqual, -7);
  m.setObjective(LinExpr(x), ObjSense::kMinimize);
  const LpResult r = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_NEAR(r.objective, -7.0, 1e-7);
}

// ---- dense/sparse agreement property ---------------------------------------

TEST(SparseSimplexProperty, AgreesWithDenseOnRandomLps) {
  Rng rng(90210);
  int optimal = 0, infeasible = 0, unbounded = 0;
  for (int trial = 0; trial < 250; ++trial) {
    const int n = 1 + static_cast<int>(rng.nextBelow(8));
    const int rows = 1 + static_cast<int>(rng.nextBelow(10));
    Model m;
    std::vector<Var> vars;
    for (int j = 0; j < n; ++j) {
      const double lb = static_cast<double>(rng.nextInt(-5, 5));
      const double ub =
          rng.nextBelow(4) == 0 ? kInfinity : lb + static_cast<double>(rng.nextBelow(10));
      vars.push_back(m.addContinuous(lb, ub, "v"));
    }
    for (int i = 0; i < rows; ++i) {
      LinExpr e;
      bool any = false;
      for (int j = 0; j < n; ++j) {
        const long c = rng.nextInt(-4, 5);
        if (c != 0) {
          e += static_cast<double>(c) * vars[static_cast<std::size_t>(j)];
          any = true;
        }
      }
      if (!any) e += 1.0 * vars[0];
      const Sense s = rng.nextBelow(3) == 0 ? Sense::kEqual
                      : rng.nextBool()      ? Sense::kLessEqual
                                            : Sense::kGreaterEqual;
      m.addConstr(e, s, static_cast<double>(rng.nextInt(-10, 15)));
    }
    LinExpr obj;
    for (int j = 0; j < n; ++j)
      obj += static_cast<double>(rng.nextInt(-9, 10)) * vars[static_cast<std::size_t>(j)];
    m.setObjective(obj, rng.nextBool() ? ObjSense::kMaximize : ObjSense::kMinimize);

    const LpResult dense = SimplexSolver().solve(m);
    const LpResult sparse = RevisedSimplexSolver().solve(m);
    ASSERT_EQ(dense.status, sparse.status) << "trial " << trial;
    switch (dense.status) {
      case LpStatus::kOptimal:
        ++optimal;
        EXPECT_NEAR(sparse.objective, dense.objective, 1e-6 * (1 + std::abs(dense.objective)))
            << "trial " << trial;
        EXPECT_TRUE(m.isFeasible(sparse.x, 1e-6)) << "trial " << trial;
        break;
      case LpStatus::kInfeasible: ++infeasible; break;
      case LpStatus::kUnbounded: ++unbounded; break;
      default: break;
    }
  }
  // The generator must actually exercise all three outcomes.
  EXPECT_GE(optimal, 30);
  EXPECT_GE(infeasible, 30);
  EXPECT_GE(unbounded, 3);
}

// ---- warm starts -----------------------------------------------------------

TEST(SparseSimplex, WarmStartReoptimizesInFewerIterations) {
  Rng rng(555);
  int exercised = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 8 + static_cast<int>(rng.nextBelow(10));
    Model m = randomSparseModel(rng, n, n + 5);
    LinExpr obj;
    for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(1, 9)) * Var{j};
    m.setObjective(obj, ObjSense::kMaximize);

    const LpResult first = RevisedSimplexSolver().solve(m);
    ASSERT_EQ(first.status, LpStatus::kOptimal) << "trial " << trial;
    ASSERT_NE(first.basis, nullptr);
    EXPECT_FALSE(first.warm_started);

    // Tighten one variable's upper bound (a branch & bound style change).
    const int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    m.setVarBounds(j, m.var(j).lb, std::max(m.var(j).lb, m.var(j).ub / 2.0));
    const LpResult cold = RevisedSimplexSolver().solve(m);
    std::vector<double> lb(static_cast<std::size_t>(n)), ub(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lb[static_cast<std::size_t>(k)] = m.var(k).lb;
      ub[static_cast<std::size_t>(k)] = m.var(k).ub;
    }
    const LpResult warm = RevisedSimplexSolver().solve(m, lb, ub, first.basis.get());
    ASSERT_EQ(cold.status, warm.status) << "trial " << trial;
    if (cold.status != LpStatus::kOptimal) continue;
    EXPECT_TRUE(warm.warm_started) << "trial " << trial;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6 * (1 + std::abs(cold.objective)))
        << "trial " << trial;
    EXPECT_LE(warm.iterations, cold.iterations) << "trial " << trial;
    ++exercised;
  }
  EXPECT_GE(exercised, 20);
}

TEST(SparseSimplex, StaleBasisShapeFallsBackToColdStart) {
  Model m;
  m.addContinuous(0, 1, "x");
  m.addConstr(LinExpr(Var{0}), Sense::kLessEqual, 1);
  m.setObjective(LinExpr(Var{0}), ObjSense::kMaximize);
  sparse::Basis stale;  // wrong shape on purpose
  stale.rows = 99;
  stale.cols = 99;
  const std::vector<double> lb{0.0}, ub{1.0};
  const LpResult r = RevisedSimplexSolver().solve(m, lb, ub, &stale);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_FALSE(r.warm_started);
  EXPECT_NEAR(r.objective, 1.0, 1e-9);
}

// ---- dual simplex ----------------------------------------------------------

TEST(DualSimplexProperty, AgreesWithDenseAndPrimalAfterBoundTightening) {
  // The branch & bound pattern: solve, tighten one bound, reoptimize from
  // the (dual-feasible) optimal basis. The dual engine must accept the warm
  // start and agree with cold dense and cold primal-sparse solves on every
  // outcome — including the tightenings that make the LP infeasible.
  Rng rng(4242);
  int dual_ran = 0, optimal = 0, infeasible = 0;
  for (int trial = 0; trial < 120; ++trial) {
    // Mixed-sense rows (equalities included) so that tightening a bound can
    // genuinely make the LP infeasible, not just move the optimum.
    const int n = 4 + static_cast<int>(rng.nextBelow(8));
    const int rows = 3 + static_cast<int>(rng.nextBelow(8));
    Model m;
    for (int j = 0; j < n; ++j) {
      const double lb = static_cast<double>(rng.nextInt(-4, 4));
      m.addContinuous(lb, lb + 2.0 + static_cast<double>(rng.nextBelow(8)), "v");
    }
    for (int i = 0; i < rows; ++i) {
      LinExpr e;
      bool any = false;
      for (int j = 0; j < n; ++j) {
        const long c = rng.nextInt(-4, 5);
        if (c != 0) {
          e += static_cast<double>(c) * Var{j};
          any = true;
        }
      }
      if (!any) e += 1.0 * Var{0};
      const Sense s = rng.nextBelow(4) == 0 ? Sense::kEqual
                      : rng.nextBool()      ? Sense::kLessEqual
                                            : Sense::kGreaterEqual;
      m.addConstr(e, s, static_cast<double>(rng.nextInt(-8, 12)));
    }
    LinExpr obj;
    for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(-9, 10)) * Var{j};
    m.setObjective(obj, rng.nextBool() ? ObjSense::kMaximize : ObjSense::kMinimize);

    const LpResult first = RevisedSimplexSolver().solve(m);
    if (first.status != LpStatus::kOptimal) continue;  // need a parent optimum
    ASSERT_NE(first.basis, nullptr);

    // One branch-style bound change: clamp one variable hard toward a bound.
    const int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    const double mid = 0.5 * (m.var(j).lb + m.var(j).ub);
    if (rng.nextBool())
      m.setVarBounds(j, m.var(j).lb, std::floor(mid));
    else
      m.setVarBounds(j, std::ceil(mid), m.var(j).ub);
    if (m.var(j).lb > m.var(j).ub) continue;  // empty box: nothing to reoptimize
    std::vector<double> lb(static_cast<std::size_t>(n)), ub(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lb[static_cast<std::size_t>(k)] = m.var(k).lb;
      ub[static_cast<std::size_t>(k)] = m.var(k).ub;
    }

    const std::optional<LpResult> dual =
        DualSimplexSolver().solve(m, lb, ub, *first.basis);
    const LpResult dense = SimplexSolver().solve(m);
    const LpResult cold = RevisedSimplexSolver().solve(m);
    ASSERT_EQ(dense.status, cold.status) << "trial " << trial;
    if (!dual) continue;  // dual-infeasible warm basis: primal fallback territory
    ++dual_ran;
    EXPECT_TRUE(dual->dual_reopt);
    EXPECT_TRUE(dual->warm_started);
    ASSERT_EQ(dual->status, dense.status) << "trial " << trial;
    if (dense.status == LpStatus::kOptimal) {
      ++optimal;
      EXPECT_NEAR(dual->objective, dense.objective, 1e-6 * (1 + std::abs(dense.objective)))
          << "trial " << trial;
      EXPECT_TRUE(m.isFeasible(dual->x, 1e-6)) << "trial " << trial;
    } else if (dense.status == LpStatus::kInfeasible) {
      ++infeasible;
    }
  }
  // A parent-optimal basis is dual feasible by construction, so the dual
  // engine must actually take these reoptimizations (and see both outcomes).
  EXPECT_GE(dual_ran, 40);
  EXPECT_GE(optimal, 20);
  EXPECT_GE(infeasible, 3);
}

TEST(DualSimplex, ReoptimizesWithFewPivotsAfterSingleTightening) {
  // A single bound change should cost the dual engine a handful of pivots,
  // not a cold-solve-sized iteration count.
  Rng rng(1357);
  int exercised = 0;
  long dual_iters = 0, cold_iters = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 10 + static_cast<int>(rng.nextBelow(8));
    Model m = randomSparseModel(rng, n, n + 5);
    LinExpr obj;
    for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(1, 9)) * Var{j};
    m.setObjective(obj, ObjSense::kMaximize);
    const LpResult first = RevisedSimplexSolver().solve(m);
    ASSERT_EQ(first.status, LpStatus::kOptimal);
    const int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    m.setVarBounds(j, m.var(j).lb, std::max(m.var(j).lb, m.var(j).ub / 2.0));
    std::vector<double> lb(static_cast<std::size_t>(n)), ub(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lb[static_cast<std::size_t>(k)] = m.var(k).lb;
      ub[static_cast<std::size_t>(k)] = m.var(k).ub;
    }
    const std::optional<LpResult> dual = DualSimplexSolver().solve(m, lb, ub, *first.basis);
    ASSERT_TRUE(dual.has_value()) << "trial " << trial;
    if (dual->status != LpStatus::kOptimal) continue;
    const LpResult cold = RevisedSimplexSolver().solve(m);
    ASSERT_EQ(cold.status, LpStatus::kOptimal);
    dual_iters += dual->iterations;
    cold_iters += cold.iterations;
    ++exercised;
  }
  EXPECT_GE(exercised, 15);
  EXPECT_LE(dual_iters, cold_iters);
}

TEST(DualSimplex, GivesUpOnDualInfeasibleWarmBasis) {
  // min x + 2y st x + y >= 2 puts x basic and y nonbasic at its lower
  // bound. Re-solving with the opposite objective makes y's reduced cost
  // negative with no upper bound to flip to: the dual engine must decline
  // so the caller falls back to the primal.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) + y, Sense::kGreaterEqual, 2);
  m.setObjective(LinExpr(x) + 2.0 * y, ObjSense::kMinimize);
  const LpResult first = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(first.status, LpStatus::kOptimal);
  ASSERT_NE(first.basis, nullptr);

  Model m2 = m;
  m2.setObjective(LinExpr(x) + 2.0 * y, ObjSense::kMaximize);  // now unbounded-ish
  const std::vector<double> lb{0.0, 0.0};
  const std::vector<double> ub{kInfinity, kInfinity};
  EXPECT_FALSE(DualSimplexSolver().solve(m2, lb, ub, *first.basis).has_value());
}

TEST(DualSimplex, AntiCyclingOnDegenerateReopt) {
  // The degenerate cluster from the primal suite, reoptimized through the
  // dual engine after a bound tightening: must terminate and agree with a
  // cold dense solve.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) - y, Sense::kLessEqual, 0);
  m.addConstr(2.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(3.0 * x - y, Sense::kLessEqual, 0);
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 4);
  m.setObjective(2.0 * x + y, ObjSense::kMaximize);
  const LpResult first = RevisedSimplexSolver().solve(m);
  ASSERT_EQ(first.status, LpStatus::kOptimal);

  m.setVarBounds(0, 0.0, 0.5);  // x <= 0.5
  const std::vector<double> lb{0.0, 0.0};
  const std::vector<double> ub{0.5, kInfinity};
  const std::optional<LpResult> dual = DualSimplexSolver().solve(m, lb, ub, *first.basis);
  const LpResult dense = SimplexSolver().solve(m);
  ASSERT_EQ(dense.status, LpStatus::kOptimal);
  ASSERT_TRUE(dual.has_value());
  ASSERT_EQ(dual->status, LpStatus::kOptimal);
  EXPECT_NEAR(dual->objective, dense.objective, 1e-7);
}

TEST(DualReopt, BreakerCoolsDownAndReArmsInsteadOfDisablingForever) {
  // Regression: the circuit breaker used to be a kill switch — once
  // `breaker_strikes` consecutive give-ups tripped it, the strike counter
  // could never reset (the reset lived behind the tripped check), so one
  // hyper-degenerate subtree disabled the dual warm path for the entire
  // rest of the tree. It is now a cool-down: after `breaker_cooldown`
  // declined calls one probe runs, and a completed probe re-arms the path.
  Model m;
  const Var x = m.addContinuous(0, kInfinity, "x");
  const Var y = m.addContinuous(0, kInfinity, "y");
  m.addConstr(LinExpr(x) + y, Sense::kGreaterEqual, 2);
  m.setObjective(2.0 * LinExpr(x) + y, ObjSense::kMinimize);
  const LpResult good = RevisedSimplexSolver().solve(m);  // y basic, x at lb
  ASSERT_EQ(good.status, LpStatus::kOptimal);
  ASSERT_NE(good.basis, nullptr);

  // A warm basis optimal for the *swapped* objective (x basic, y at lb) is
  // dual-infeasible for `m`: y's reduced cost is negative with no upper
  // bound to flip to, so every reoptimize from it must give up — the
  // deterministic stand-in for a subtree that defeats dual Devex.
  Model swapped = m;
  swapped.setObjective(LinExpr(x) + 2.0 * y, ObjSense::kMinimize);
  const LpResult bad_src = RevisedSimplexSolver().solve(swapped);
  ASSERT_EQ(bad_src.status, LpStatus::kOptimal);
  const std::shared_ptr<const sparse::Basis> bad = bad_src.basis;
  const std::shared_ptr<const sparse::Basis> fine = good.basis;

  DualSimplexSolver::Options opt;
  opt.breaker_strikes = 2;
  opt.breaker_cooldown = 3;
  const auto csc = std::make_shared<const CscMatrix>(CscMatrix::fromModel(m));
  sparse::DualReoptimizer reopt(m, csc, opt);
  const std::vector<double> lb{0.0, 0.0};
  const std::vector<double> ub{kInfinity, kInfinity};

  // Two genuine give-ups trip the breaker...
  EXPECT_FALSE(reopt.reoptimize(lb, ub, bad, 0).has_value());
  EXPECT_FALSE(reopt.reoptimize(lb, ub, bad, 0).has_value());
  // ...and while tripped even a perfectly good warm basis is declined for
  // `breaker_cooldown` calls (the declines cost nothing — that is the point).
  for (int i = 0; i < 3; ++i)
    EXPECT_FALSE(reopt.reoptimize(lb, ub, fine, 0).has_value()) << "cooldown call " << i;
  // The cool-down has elapsed: the next call is the probe, it completes,
  // and the warm path is fully re-armed — this is what the old kill-switch
  // breaker could never do.
  const std::optional<LpResult> probe = reopt.reoptimize(lb, ub, fine, 0);
  ASSERT_TRUE(probe.has_value()) << "probe after cool-down must run";
  EXPECT_EQ(probe->status, LpStatus::kOptimal);
  EXPECT_NEAR(probe->objective, good.objective, 1e-9);
  const std::optional<LpResult> rearmed = reopt.reoptimize(lb, ub, fine, 0);
  ASSERT_TRUE(rearmed.has_value());
  EXPECT_EQ(rearmed->status, LpStatus::kOptimal);

  // And a fresh run of give-ups can trip it again: the re-arm restored the
  // breaker, not just one probe.
  EXPECT_FALSE(reopt.reoptimize(lb, ub, bad, 0).has_value());
  EXPECT_FALSE(reopt.reoptimize(lb, ub, bad, 0).has_value());
  EXPECT_FALSE(reopt.reoptimize(lb, ub, fine, 0).has_value());  // tripped again
}

TEST(LpSolverReopt, DualFirstWithPrimalFallbackProducesCorrectResults) {
  // Through the LpSolver entry point: warm solves take the dual fast path
  // (dual_reopt flag set) and still agree with the dense engine; with
  // dual_reopt off the same solves run primal.
  Rng rng(8642);
  int dual_hits = 0, exercised = 0;
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 6 + static_cast<int>(rng.nextBelow(8));
    Model m = randomSparseModel(rng, n, n + 3);
    LinExpr obj;
    for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(1, 9)) * Var{j};
    m.setObjective(obj, ObjSense::kMaximize);
    LpSolver::Options sopt;
    sopt.engine = LpEngine::kSparse;
    const LpResult first = LpSolver(sopt).solve(m);
    ASSERT_EQ(first.status, LpStatus::kOptimal);
    const int j = static_cast<int>(rng.nextBelow(static_cast<std::uint64_t>(n)));
    m.setVarBounds(j, m.var(j).lb, std::max(m.var(j).lb, m.var(j).ub / 2.0));
    std::vector<double> lb(static_cast<std::size_t>(n)), ub(static_cast<std::size_t>(n));
    for (int k = 0; k < n; ++k) {
      lb[static_cast<std::size_t>(k)] = m.var(k).lb;
      ub[static_cast<std::size_t>(k)] = m.var(k).ub;
    }
    const LpResult warm = LpSolver(sopt).solve(m, lb, ub, first.basis.get());
    LpSolver::Options primal_only = sopt;
    primal_only.dual_reopt = false;
    const LpResult primal = LpSolver(primal_only).solve(m, lb, ub, first.basis.get());
    const LpResult dense = SimplexSolver().solve(m);
    ASSERT_EQ(warm.status, dense.status) << "trial " << trial;
    ASSERT_EQ(primal.status, dense.status) << "trial " << trial;
    EXPECT_FALSE(primal.dual_reopt);
    dual_hits += warm.dual_reopt ? 1 : 0;
    if (dense.status != LpStatus::kOptimal) continue;
    EXPECT_NEAR(warm.objective, dense.objective, 1e-6 * (1 + std::abs(dense.objective)));
    EXPECT_NEAR(primal.objective, dense.objective, 1e-6 * (1 + std::abs(dense.objective)));
    ++exercised;
  }
  EXPECT_GE(exercised, 15);
  EXPECT_GE(dual_hits, 25);  // the fast path must actually be the default
}

// ---- LpSolver dispatch -----------------------------------------------------

TEST(LpSolverDispatch, AutoPicksDenseForSmallAndSparseForLarge) {
  Model small;
  small.addContinuous(0, 1, "x");
  small.addConstr(LinExpr(Var{0}), Sense::kLessEqual, 1);
  LpSolver auto_solver;
  EXPECT_EQ(auto_solver.resolveEngine(small), LpEngine::kDense);

  LpSolver::Options tiny_limit;
  tiny_limit.auto_dense_limit_mib = 1e-9;
  EXPECT_EQ(LpSolver(tiny_limit).resolveEngine(small), LpEngine::kSparse);

  LpSolver::Options pinned;
  pinned.engine = LpEngine::kSparse;
  const LpResult r = LpSolver(pinned).solve(small);
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.engine, LpEngine::kSparse);
}

TEST(LpSolverDispatch, MemoryEstimatesScaleAsDocumented) {
  Rng rng(12);
  const Model m = randomSparseModel(rng, 40, 120);
  // Dense: (m+1)(n+2m+2) doubles; sparse: 96 B/nonzero + 160 B/variable
  // (documented in lp_solver.cpp) — assert the exact formulas so a unit slip
  // (KiB/GiB confusion would mis-gate max_lp_gib) is caught.
  const long nnz = sparse::countNonzeros(m);
  EXPECT_GT(nnz, 0);
  constexpr double kGib = 1024.0 * 1024.0 * 1024.0;
  EXPECT_NEAR(LpSolver::denseTableauGib(m) * kGib,
              (120.0 + 1) * (40.0 + 2 * 120 + 2) * 8.0, 1.0);
  EXPECT_NEAR(LpSolver::sparseFootprintGib(m) * kGib,
              96.0 * static_cast<double>(nnz) + 160.0 * (40 + 120), 1.0);
  EXPECT_LT(LpSolver::sparseFootprintGib(m), LpSolver::denseTableauGib(m));
}

}  // namespace
}  // namespace rfp::lp

// ---- branch & bound over the sparse engine ---------------------------------

namespace rfp::milp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::ObjSense;
using lp::Sense;
using lp::Var;

Model randomBinaryProgram(Rng& rng) {
  const int n = 4 + static_cast<int>(rng.nextBelow(8));
  const int rows = 1 + static_cast<int>(rng.nextBelow(4));
  Model m;
  for (int j = 0; j < n; ++j) m.addBinary("b");
  for (int i = 0; i < rows; ++i) {
    LinExpr e;
    for (int j = 0; j < n; ++j) {
      const long c = rng.nextInt(-4, 6);
      if (c != 0) e += static_cast<double>(c) * Var{j};
    }
    m.addConstr(e, rng.nextBool() ? Sense::kLessEqual : Sense::kGreaterEqual,
                static_cast<double>(rng.nextInt(0, 12)));
  }
  LinExpr obj;
  for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(-10, 10)) * Var{j};
  m.setObjective(obj, rng.nextBool() ? ObjSense::kMaximize : ObjSense::kMinimize);
  return m;
}

TEST(MilpSparseProperty, SparseEngineMatchesDenseEngineOnRandomPrograms) {
  Rng rng(31415);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const Model m = randomBinaryProgram(rng);
    MilpSolver::Options dense_opt;
    dense_opt.lp.engine = lp::LpEngine::kDense;
    MilpSolver::Options sparse_opt;
    sparse_opt.lp.engine = lp::LpEngine::kSparse;
    const MipResult rd = MilpSolver(dense_opt).solve(m);
    const MipResult rs = MilpSolver(sparse_opt).solve(m);
    ASSERT_EQ(rd.status, rs.status) << "trial " << trial;
    if (rd.status != MipStatus::kOptimal) continue;
    ++solved;
    EXPECT_EQ(rs.lp_engine, lp::LpEngine::kSparse);
    EXPECT_NEAR(rs.objective, rd.objective, 1e-6) << "trial " << trial;
    EXPECT_TRUE(m.isFeasible(rs.x, 1e-6)) << "trial " << trial;
  }
  EXPECT_GE(solved, 25);
}

TEST(MilpSparse, WarmStartedTreeIsDeterministicAndCheaper) {
  // Same model, sparse engine, warm starts on vs off: identical tree
  // (node-for-node) and optimum, but warm starts must not cost more LP
  // iterations in aggregate — that is the point of reoptimizing children
  // from the parent basis.
  Rng rng(2718);
  long warm_total = 0, cold_total = 0;
  int compared = 0;
  for (int trial = 0; trial < 25; ++trial) {
    const Model m = randomBinaryProgram(rng);
    MilpSolver::Options base;
    base.lp.engine = lp::LpEngine::kSparse;
    // Heuristics off so both runs expand the same tree deterministically.
    base.enable_rounding_heuristic = false;
    MilpSolver::Options warm_opt = base;
    warm_opt.lp_warm_start = true;
    MilpSolver::Options cold_opt = base;
    cold_opt.lp_warm_start = false;
    const MipResult warm = MilpSolver(warm_opt).solve(m);
    const MipResult cold = MilpSolver(cold_opt).solve(m);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    if (warm.status != MipStatus::kOptimal) continue;
    EXPECT_NEAR(warm.objective, cold.objective, 1e-6) << "trial " << trial;
    EXPECT_EQ(cold.lp_warm_hits, 0);
    warm_total += warm.lp_iterations;
    cold_total += cold.lp_iterations;
    if (warm.nodes > 1) {
      EXPECT_GT(warm.lp_warm_hits, 0) << "trial " << trial;
      ++compared;
    }
  }
  EXPECT_GE(compared, 5);
  EXPECT_LE(warm_total, cold_total);
}

TEST(MilpSparse, ChildNodesReoptimizeThroughDualSimplex) {
  // With warm starts on (the default), child-node reoptimization must go
  // through the dual simplex: every tree that branches reports dual-reopt
  // solves, and the results still match the dense engine.
  Rng rng(998877);
  int trees = 0, with_dual = 0;
  for (int trial = 0; trial < 120 && trees < 15; ++trial) {
    const Model m = randomBinaryProgram(rng);
    MilpSolver::Options sparse_opt;
    sparse_opt.lp.engine = lp::LpEngine::kSparse;
    const MipResult rs = MilpSolver(sparse_opt).solve(m);
    if (rs.status != MipStatus::kOptimal || rs.nodes <= 1) continue;
    ++trees;
    with_dual += rs.lp_dual_reopts > 0 ? 1 : 0;
    if (rs.lp_dual_reopts > 0) {
      EXPECT_GT(rs.lp_dual_pivots + rs.lp_bound_flips, 0);
    }
    MilpSolver::Options dense_opt;
    dense_opt.lp.engine = lp::LpEngine::kDense;
    const MipResult rd = MilpSolver(dense_opt).solve(m);
    ASSERT_EQ(rd.status, MipStatus::kOptimal) << "trial " << trial;
    EXPECT_NEAR(rs.objective, rd.objective, 1e-6) << "trial " << trial;
  }
  EXPECT_GE(trees, 8);
  // A parent-optimal basis is dual feasible under a bound change, so the
  // fast path should carry (nearly) every branching tree.
  EXPECT_GE(with_dual, (trees * 3) / 4);
}

TEST(MilpSparse, CscMatrixBuiltExactlyOncePerTree) {
  // A fractional knapsack forces branching; the whole tree (root + every
  // node reoptimization) must share a single CSC build.
  Model m;
  const std::vector<double> w{3, 5, 7, 4, 6};
  const std::vector<double> c{4, 5, 6, 3, 7};
  LinExpr cap, obj;
  for (int j = 0; j < 5; ++j) {
    m.addBinary("b");
    cap += w[static_cast<std::size_t>(j)] * Var{j};
    obj += c[static_cast<std::size_t>(j)] * Var{j};
  }
  m.addConstr(cap, Sense::kLessEqual, 11);
  m.setObjective(obj, ObjSense::kMaximize);

  MilpSolver::Options opt;
  opt.lp.engine = lp::LpEngine::kSparse;
  opt.enable_cover_cuts = false;  // cut rounds re-solve a mutating model
  const long before = lp::sparse::CscMatrix::buildCount();
  const MipResult res = MilpSolver(opt).solve(m);
  const long built = lp::sparse::CscMatrix::buildCount() - before;
  ASSERT_EQ(res.status, MipStatus::kOptimal);
  EXPECT_GT(res.nodes, 1);  // the instance must actually branch
  EXPECT_EQ(built, 1) << "every node solve should reuse the tree's CSC build";
}

}  // namespace
}  // namespace rfp::milp

// ---- floorplanning formulation root relaxations ----------------------------

namespace rfp {
namespace {

TEST(SparseFormulation, RootRelaxationAgreesWithDenseOnGeneratedInstances) {
  Rng rng(64);
  const device::Device dev = device::virtex5FX70T();
  int exercised = 0;
  for (std::uint64_t seed = 1; seed <= 8 && exercised < 3; ++seed) {
    model::GeneratorOptions gopt;
    gopt.num_regions = 3;
    gopt.num_nets = 2;
    gopt.seed = seed;
    const auto problem = model::generateProblem(dev, gopt);
    if (!problem) continue;
    const auto part = partition::columnarPartition(dev);
    ASSERT_TRUE(part.has_value());
    fp::MilpFormulation formulation(*problem, *part, {});
    const lp::Model& m = formulation.model();

    const lp::LpResult dense = lp::SimplexSolver().solve(m);
    const lp::LpResult sparse = lp::sparse::RevisedSimplexSolver().solve(m);
    ASSERT_EQ(dense.status, sparse.status) << "seed " << seed;
    if (dense.status != lp::LpStatus::kOptimal) continue;
    EXPECT_NEAR(sparse.objective, dense.objective, 1e-5 * (1 + std::abs(dense.objective)))
        << "seed " << seed;
    ++exercised;
  }
  EXPECT_GE(exercised, 1) << "generator produced no solvable instance";
}

TEST(SparseFormulation, DegenerateDiveStaysOnDualPathUnderSteepestEdge) {
  // Regression for the SDR3 failure mode: floorplanning formulations are
  // hyper-degenerate, and dual Devex row pricing used to wander past the
  // effort budget on their node reoptimizations — tripping the give-up
  // circuit breaker and dumping the dive onto the primal fallback. With
  // exact steepest-edge pricing (the default) a branch & bound style dive
  // must stay on the dual fast path: every node answered, no declines.
  Rng rng(64);
  const device::Device dev = device::virtex5FX70T();
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.num_nets = 2;
  std::optional<model::FloorplanProblem> problem;
  for (gopt.seed = 1; gopt.seed <= 16 && !problem; ++gopt.seed)
    problem = model::generateProblem(dev, gopt);
  ASSERT_TRUE(problem.has_value());
  const auto part = partition::columnarPartition(dev);
  ASSERT_TRUE(part.has_value());
  fp::MilpFormulation formulation(*problem, *part, {});
  const lp::Model& m = formulation.model();

  const auto csc =
      std::make_shared<const lp::sparse::CscMatrix>(lp::sparse::CscMatrix::fromModel(m));
  lp::LpSolver::Options opt;
  opt.engine = lp::LpEngine::kSparse;
  const lp::LpResult root = lp::LpSolver(opt).solve(m);
  ASSERT_EQ(root.status, lp::LpStatus::kOptimal);
  ASSERT_NE(root.basis, nullptr);

  lp::sparse::DualReoptimizer reopt(m, csc, {});
  std::vector<double> lb(static_cast<std::size_t>(m.numVars()));
  std::vector<double> ub(static_cast<std::size_t>(m.numVars()));
  for (int j = 0; j < m.numVars(); ++j) {
    lb[static_cast<std::size_t>(j)] = m.var(j).lb;
    ub[static_cast<std::size_t>(j)] = m.var(j).ub;
  }
  std::shared_ptr<const lp::sparse::Basis> basis = root.basis;
  std::vector<double> x = root.x;
  int nodes = 0;
  long dse_updates = 0;
  long dual_pivots = 0;
  while (nodes < 10) {
    int frac_var = -1;
    for (int j = 0; j < m.numVars() && frac_var < 0; ++j) {
      if (m.var(j).type == lp::VarType::kContinuous) continue;
      const double f =
          x[static_cast<std::size_t>(j)] - std::floor(x[static_cast<std::size_t>(j)]);
      if (f > 1e-6 && f < 1.0 - 1e-6) frac_var = j;
    }
    if (frac_var < 0) break;  // dive reached an integral point
    const double v = x[static_cast<std::size_t>(frac_var)];
    if (v - std::floor(v) <= 0.5)
      ub[static_cast<std::size_t>(frac_var)] = std::floor(v);
    else
      lb[static_cast<std::size_t>(frac_var)] = std::floor(v) + 1.0;
    const std::optional<lp::LpResult> r = reopt.reoptimize(lb, ub, basis, 30);
    ASSERT_TRUE(r.has_value()) << "node " << nodes
                               << ": dual fast path declined a parent-optimal warm start";
    ++nodes;
    dse_updates += r->dse_updates;
    dual_pivots += r->dual_pivots;
    if (r->status != lp::LpStatus::kOptimal) break;  // infeasible leaf ends the dive
    EXPECT_TRUE(r->dual_reopt);
    basis = r->basis;
    x = r->x;
  }
  EXPECT_GE(nodes, 3) << "instance did not branch enough to exercise the dive";
  // Steepest-edge pricing must actually be running its recurrence: every
  // dual pivot applies one weight update.
  EXPECT_EQ(dse_updates, dual_pivots);
  EXPECT_GT(dual_pivots, 0);
}

}  // namespace
}  // namespace rfp
