// Tests for the tracing + metrics subsystem (src/support/telemetry/):
// sharded-counter exactness under contention, histogram bucketing, span
// nesting and the Chrome trace-event JSON round trip (emitted JSON is
// parsed back by the repo's own validator), the sampling knob, and the
// disabled-path cost contract (a null context must stay branch-only).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "support/log.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

namespace rfp::telemetry {
namespace {

// ---- metrics -------------------------------------------------------------

TEST(Metrics, CounterSumsExactlyAcrossContendingThreads) {
  MetricsRegistry reg;
  Counter& c = reg.counter("test.bumps");
  constexpr int kThreads = 8;
  constexpr long kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (long i = 0; i < kPerThread; ++i) c.increment();
    });
  for (std::thread& t : threads) t.join();
  // The property under test: relaxed per-shard bumps lose nothing — the
  // post-quiesce snapshot is exact, not approximate.
  EXPECT_EQ(c.total(), static_cast<long>(kThreads) * kPerThread);
  EXPECT_EQ(reg.flatten().at("test.bumps"), static_cast<double>(kThreads) * kPerThread);
}

TEST(Metrics, RegistryReturnsStableInstrumentIdentity) {
  MetricsRegistry reg;
  Counter& a = reg.counter("same.name");
  Counter& b = reg.counter("same.name");
  EXPECT_EQ(&a, &b);  // find-or-create, never a second instrument
  a.add(3);
  b.add(4);
  EXPECT_EQ(a.total(), 7);
}

TEST(Metrics, GaugeHoldsLastValue) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("test.gauge");
  g.set(2.5);
  g.set(-7.25);
  EXPECT_DOUBLE_EQ(g.value(), -7.25);
}

TEST(Metrics, HistogramCountsSumsAndBucketsUnderThreads) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("test.hist");
  constexpr int kThreads = 6;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) h.record(static_cast<double>(t + 1));
    });
  for (std::thread& t : threads) t.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<long>(kThreads) * kPerThread);
  // Sum of t+1 for t in [0,6) is 21, times kPerThread — exact, since the
  // per-shard sums CAS full doubles rather than losing precision to racing.
  EXPECT_DOUBLE_EQ(s.sum, 21.0 * kPerThread);
  EXPECT_DOUBLE_EQ(s.mean(), 21.0 / kThreads);
  long bucketed = 0;
  for (const long b : s.buckets) bucketed += b;
  EXPECT_EQ(bucketed, s.count);
}

TEST(Metrics, FlattenExposesHistogramFacets) {
  MetricsRegistry reg;
  reg.histogram("lp.iters").record(8.0);
  reg.histogram("lp.iters").record(16.0);
  const auto flat = reg.flatten();
  EXPECT_EQ(flat.at("lp.iters.count"), 2.0);
  EXPECT_DOUBLE_EQ(flat.at("lp.iters.mean"), 12.0);
  EXPECT_GE(flat.at("lp.iters.max"), 16.0);
}

// ---- tracing -------------------------------------------------------------

TEST(Trace, SpansAndInstantsRoundTripThroughChromeJson) {
  TraceRecorder rec;
  rec.nameThread("main-test-thread");
  {
    Span outer(&rec, "search", "node_batch");
    outer.arg("nodes", 1024.0);
    {
      Span inner(&rec, "lp", "root_lp");
      inner.note("engine", "sparse");
    }
    rec.instant("incumbent", "publish", "waste", 42.0, "engine", "search");
  }
  const std::string json = rec.toChromeJson();
  const TraceSummary sum = validateChromeTrace(json);
  ASSERT_TRUE(sum.ok) << sum.error << "\n" << json;
  EXPECT_EQ(sum.events, 3);
  EXPECT_TRUE(sum.categories.count("search"));
  EXPECT_TRUE(sum.categories.count("lp"));
  EXPECT_TRUE(sum.categories.count("incumbent"));
  EXPECT_TRUE(sum.names.count("node_batch"));
  EXPECT_TRUE(sum.names.count("root_lp"));
  EXPECT_TRUE(sum.names.count("publish"));
  // The lane name travels as a thread_name metadata event.
  EXPECT_NE(json.find("main-test-thread"), std::string::npos);
}

TEST(Trace, MultiThreadedEventsLandOnDistinctLanes) {
  TraceRecorder rec;
  constexpr int kThreads = 4;
  constexpr int kEach = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&rec] {
      for (int i = 0; i < kEach; ++i) rec.instant("steal", "steal", "tasks", 1.0);
    });
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(rec.retained(), static_cast<long>(kThreads) * kEach);
  EXPECT_EQ(rec.dropped(), 0);
  const TraceSummary sum = validateChromeTrace(rec.toChromeJson());
  ASSERT_TRUE(sum.ok) << sum.error;
  EXPECT_EQ(sum.events, static_cast<long>(kThreads) * kEach);
}

TEST(Trace, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder rec(/*lane_capacity=*/16);
  for (int i = 0; i < 100; ++i) rec.instant("cat", "ev");
  EXPECT_EQ(rec.retained(), 16);
  EXPECT_EQ(rec.dropped(), 84);
  const TraceSummary sum = validateChromeTrace(rec.toChromeJson());
  ASSERT_TRUE(sum.ok) << sum.error;
  EXPECT_EQ(sum.events, 16);
}

TEST(Trace, ValidatorRejectsMalformedJson) {
  EXPECT_FALSE(validateChromeTrace("").ok);
  EXPECT_FALSE(validateChromeTrace("[]").ok);  // top level must be an object
  EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": 3}").ok);
  EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": [{\"name\":\"x\"}]}").ok);  // no ph/pid/tid
  EXPECT_FALSE(validateChromeTrace("{\"traceEvents\": []} trailing").ok);
  EXPECT_TRUE(validateChromeTrace("{\"traceEvents\": []}").ok);
}

TEST(Trace, SamplingKnobGatesHighFrequencyEvents) {
  TraceRecorder rec;
  MetricsRegistry reg;
  Context ctx;
  ctx.metrics = &reg;
  ctx.trace = &rec;
  ctx.detail_sample = 10;
  long hits = 0;
  for (std::uint64_t n = 1; n <= 1000; ++n)
    if (sampleHit(&ctx, n)) ++hits;
  EXPECT_EQ(hits, 100);
  ctx.detail_sample = 0;  // 0 disables detail events entirely
  EXPECT_FALSE(sampleHit(&ctx, 10));
  EXPECT_FALSE(sampleHit(nullptr, 10));
}

TEST(Trace, NullContextSpanIsInertAndCheap) {
  // Contract: instrumentation with no context must cost a branch, never a
  // clock read or an allocation. A generous wall-clock bound (micro-
  // benchmarks don't belong in unit tests) still catches an accidental
  // steady_clock::now() or mutex on the disabled path — 2M spans would
  // then take far longer than the bound.
  constexpr long kSpans = 2000000;
  Stopwatch watch;
  double sink = 0.0;
  for (long i = 0; i < kSpans; ++i) {
    Span s(static_cast<const Context*>(nullptr), "cat", "name");
    s.arg("k", 1.0);
    sink += s.active() ? 1.0 : 0.0;
  }
  const double seconds = watch.seconds();
  EXPECT_EQ(sink, 0.0);
  EXPECT_LT(seconds, 2.0) << "disabled-path span cost is not branch-only";
}

TEST(Trace, SpanMoveTransfersOwnershipOnce) {
  TraceRecorder rec;
  {
    Span a(&rec, "cat", "outer");
    Span b = std::move(a);
    EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): asserting the postcondition
    EXPECT_TRUE(b.active());
    Span c;
    c = std::move(b);
    EXPECT_TRUE(c.active());
  }
  // One 'X' event total: the moves must not double-record the span.
  EXPECT_EQ(rec.retained(), 1);
  const TraceSummary sum = validateChromeTrace(rec.toChromeJson());
  ASSERT_TRUE(sum.ok) << sum.error;
  EXPECT_EQ(sum.events, 1);
}

// ---- log sink ------------------------------------------------------------

TEST(Log, LevelFromStringParsesNamesCaseInsensitively) {
  using log::Level;
  EXPECT_EQ(log::levelFromString("info", Level::kError), Level::kInfo);
  EXPECT_EQ(log::levelFromString("WARN", Level::kError), Level::kWarn);
  EXPECT_EQ(log::levelFromString("warning", Level::kError), Level::kWarn);
  EXPECT_EQ(log::levelFromString("off", Level::kError), Level::kOff);
  EXPECT_EQ(log::levelFromString("junk", Level::kDebug), Level::kDebug);
}

TEST(Log, SetLogFileRejectsUnwritablePath) {
  EXPECT_FALSE(log::setLogFile("/nonexistent-dir-for-rfp-test/x.log"));
  // Empty path restores stderr; must always succeed.
  EXPECT_TRUE(log::setLogFile(""));
}

}  // namespace
}  // namespace rfp::telemetry
