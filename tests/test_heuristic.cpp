// Tests for the constructive heuristic (HO's first-solution generator).
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "fp/heuristic.hpp"
#include "model/floorplan.hpp"

namespace rfp::fp {
namespace {

TEST(Heuristic, SolvesSdrWithoutRelocation) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const auto fp = constructiveFloorplan(sdr);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(model::check(sdr, *fp), "");
}

TEST(Heuristic, SolvesSdr2WithHardRelocation) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  const auto fp = constructiveFloorplan(sdr2);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(model::check(sdr2, *fp), "");
  EXPECT_EQ(fp->placedFcCount(), 6);
}

TEST(Heuristic, FailsCleanlyOnImpossibleInstance) {
  const device::Device dev = device::uniformDevice(2, 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
  HeuristicOptions opt;
  opt.restarts = 4;
  EXPECT_FALSE(constructiveFloorplan(p, opt).has_value());
}

TEST(Heuristic, DeterministicForFixedSeed) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const auto a = constructiveFloorplan(sdr);
  const auto b = constructiveFloorplan(sdr);
  ASSERT_TRUE(a && b);
  for (int n = 0; n < sdr.numRegions(); ++n)
    EXPECT_EQ(a->regions[static_cast<std::size_t>(n)], b->regions[static_cast<std::size_t>(n)]);
}

TEST(Heuristic, RestartsRecoverFromBadFirstOrder) {
  // Generated instances on a tight device: restarts must raise the success
  // rate over the deterministic first order alone.
  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 4);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {4, 0, 1}});
  p.addRegion(model::RegionSpec{"b", {3, 1, 0}});
  p.addRegion(model::RegionSpec{"c", {6, 0, 0}});
  HeuristicOptions opt;
  opt.restarts = 50;
  const auto fp = constructiveFloorplan(p, opt);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(model::check(p, *fp), "");
}

TEST(Heuristic, SolutionsOnGeneratedSdr3AreCheckable) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr3 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr3, 3);
  HeuristicOptions opt;
  opt.restarts = 30;
  const auto fp = constructiveFloorplan(sdr3, opt);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(model::check(sdr3, *fp), "");
  EXPECT_EQ(fp->placedFcCount(), 9);
}

TEST(Heuristic, SoftRequestsBestEffort) {
  // Tight device: region fits but no FC space; soft request → still succeeds.
  const device::Device dev = device::uniformDevice(2, 2);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"r", {4}});
  p.addRelocation(model::RelocationRequest{0, 1, false, 1.0});
  const auto fp = constructiveFloorplan(p);
  ASSERT_TRUE(fp.has_value());
  EXPECT_EQ(fp->placedFcCount(), 0);
  EXPECT_EQ(model::check(p, *fp), "");
}

}  // namespace
}  // namespace rfp::fp
