// Runtime reconfiguration simulator: ICAP timing model, bitstream store
// policies (relocation-aware vs per-location), and schedule execution
// against floorplans with free-compatible areas.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "reconfig/reconfig.hpp"
#include "search/solver.hpp"
#include "support/check.hpp"

namespace rfp::reconfig {
namespace {

using device::Rect;

// A 2-region floorplan with one FC area on a uniform device, built by hand.
struct Fixture {
  device::Device dev = device::uniformDevice(8, 4);
  model::FloorplanProblem problem{&dev};
  model::Floorplan fp;

  Fixture() {
    problem.addRegion(model::RegionSpec{"a", {4}});
    problem.addRegion(model::RegionSpec{"b", {2}});
    problem.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    fp.regions = {Rect{0, 0, 2, 2}, Rect{2, 0, 2, 1}};
    fp.fc_areas = model::expandFcRequests(problem);
    fp.fc_areas[0].placed = true;
    fp.fc_areas[0].rect = Rect{4, 0, 2, 2};
  }
};

TEST(Icap, LoadTimeScalesLinearlyInFrames) {
  const Icap icap;
  const double t1 = icap.loadMicros(10);
  const double t2 = icap.loadMicros(20);
  const double overhead = icap.spec().per_load_overhead_us;
  EXPECT_NEAR(t2 - overhead, 2.0 * (t1 - overhead), 1e-9);
  EXPECT_GT(t1, overhead);
}

TEST(Icap, Virtex5NumbersAreInTheRightBallpark) {
  // 100 MHz x 4 bytes/cycle = 400 MB/s; one frame = 164 bytes ≈ 0.41 us.
  const Icap icap;
  EXPECT_NEAR(icap.loadMicros(1) - icap.spec().per_load_overhead_us, 0.41, 0.01);
}

TEST(Icap, RelocationFilterCostIsPerFrame) {
  const Icap icap;
  EXPECT_DOUBLE_EQ(icap.relocateMicros(0), 0.0);
  EXPECT_GT(icap.relocateMicros(100), icap.relocateMicros(10));
}

TEST(BitstreamStore, RelocationAwareStoresOneCopyPerMode) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kRelocationAware);
  store.registerMode(0, ModuleMode{"m0", 11}, {f.fp.regions[0], f.fp.fc_areas[0].rect});
  store.registerMode(0, ModuleMode{"m1", 12}, {f.fp.regions[0], f.fp.fc_areas[0].rect});
  EXPECT_EQ(store.bitstreamCount(), 2);
}

TEST(BitstreamStore, PerLocationDuplicatesPerTarget) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kPerLocation);
  store.registerMode(0, ModuleMode{"m0", 11}, {f.fp.regions[0], f.fp.fc_areas[0].rect});
  store.registerMode(0, ModuleMode{"m1", 12}, {f.fp.regions[0], f.fp.fc_areas[0].rect});
  EXPECT_EQ(store.bitstreamCount(), 4);
}

TEST(BitstreamStore, StorageBytesReflectThePolicy) {
  Fixture f;
  BitstreamStore aware(f.dev, StorePolicy::kRelocationAware);
  BitstreamStore dup(f.dev, StorePolicy::kPerLocation);
  const std::vector<Rect> targets{f.fp.regions[0], f.fp.fc_areas[0].rect};
  aware.registerMode(0, ModuleMode{"m", 3}, targets);
  dup.registerMode(0, ModuleMode{"m", 3}, targets);
  EXPECT_EQ(dup.totalBytes(), 2 * aware.totalBytes());
}

TEST(BitstreamStore, FetchRelocatesOnlyWhenTargetDiffers) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kRelocationAware);
  const std::vector<Rect> targets{f.fp.regions[0], f.fp.fc_areas[0].rect};
  store.registerMode(0, ModuleMode{"m", 3}, targets);

  int frames = -1;
  const auto home = store.fetch(0, "m", targets[0], &frames);
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(home.area, targets[0]);

  const auto moved = store.fetch(0, "m", targets[1], &frames);
  EXPECT_GT(frames, 0);
  EXPECT_EQ(moved.area, targets[1]);
  EXPECT_EQ(bitstream::verifyBitstream(f.dev, moved), "");
}

TEST(BitstreamStore, PerLocationFetchNeverRunsTheFilter) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kPerLocation);
  const std::vector<Rect> targets{f.fp.regions[0], f.fp.fc_areas[0].rect};
  store.registerMode(0, ModuleMode{"m", 3}, targets);
  int frames = -1;
  const auto bs = store.fetch(0, "m", targets[1], &frames);
  EXPECT_EQ(frames, 0);
  EXPECT_EQ(bs.area, targets[1]);
}

TEST(BitstreamStore, RejectsIncompatibleTargets) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kRelocationAware);
  EXPECT_THROW(store.registerMode(0, ModuleMode{"m", 3},
                                  {Rect{0, 0, 2, 2}, Rect{4, 0, 3, 2}}),  // wrong width
               rfp::CheckError);
}

TEST(BitstreamStore, RejectsDuplicateRegistration) {
  Fixture f;
  BitstreamStore store(f.dev, StorePolicy::kRelocationAware);
  store.registerMode(0, ModuleMode{"m", 3}, {f.fp.regions[0]});
  EXPECT_THROW(store.registerMode(0, ModuleMode{"m", 4}, {f.fp.regions[0]}),
               rfp::CheckError);
}

TEST(Simulator, TargetsAreHomePlusPlacedFcAreas) {
  Fixture f;
  ReconfigSimulator sim(f.problem, f.fp, StorePolicy::kRelocationAware);
  EXPECT_EQ(sim.targetCount(0), 2);
  EXPECT_EQ(sim.targetCount(1), 1);
  EXPECT_EQ(sim.target(0, 0), f.fp.regions[0]);
  EXPECT_EQ(sim.target(0, 1), f.fp.fc_areas[0].rect);
  EXPECT_THROW((void)sim.target(1, 1), rfp::CheckError);
}

TEST(Simulator, SequentialIcapSerializesOverlappingRequests) {
  Fixture f;
  ReconfigSimulator sim(f.problem, f.fp, StorePolicy::kRelocationAware);
  sim.registerModes(0, {ModuleMode{"m", 1}});
  sim.registerModes(1, {ModuleMode{"m", 2}});

  // Both requests arrive at t=0: the second must wait for the first.
  const SimulationResult res =
      sim.run({SwitchRequest{0.0, 0, "m", 0}, SwitchRequest{0.0, 1, "m", 0}});
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_DOUBLE_EQ(res.records[0].start_us, 0.0);
  EXPECT_GE(res.records[1].start_us, res.records[0].ready_us);
  EXPECT_GT(res.stats.max_queue_wait_us, 0.0);
}

TEST(Simulator, IdlePortServesImmediately) {
  Fixture f;
  ReconfigSimulator sim(f.problem, f.fp, StorePolicy::kRelocationAware);
  sim.registerModes(0, {ModuleMode{"m", 1}});
  const SimulationResult res =
      sim.run({SwitchRequest{0.0, 0, "m", 0}, SwitchRequest{1e6, 0, "m", 0}});
  EXPECT_DOUBLE_EQ(res.records[1].start_us, 1e6);
  EXPECT_DOUBLE_EQ(res.stats.max_queue_wait_us, 0.0);
}

TEST(Simulator, RelocationLatencyOnlyUnderRelocationAwarePolicy) {
  Fixture f;
  for (const StorePolicy policy :
       {StorePolicy::kRelocationAware, StorePolicy::kPerLocation}) {
    ReconfigSimulator sim(f.problem, f.fp, policy);
    sim.registerModes(0, {ModuleMode{"m", 1}});
    const SimulationResult res = sim.run({SwitchRequest{0.0, 0, "m", 1}});
    ASSERT_EQ(res.records.size(), 1u);
    if (policy == StorePolicy::kRelocationAware) {
      EXPECT_TRUE(res.records[0].relocated);
      EXPECT_GT(res.records[0].filter_us, 0.0);
    } else {
      EXPECT_FALSE(res.records[0].relocated);
      EXPECT_DOUBLE_EQ(res.records[0].filter_us, 0.0);
    }
  }
}

TEST(Simulator, ScheduleIsSortedByArrival) {
  Fixture f;
  ReconfigSimulator sim(f.problem, f.fp, StorePolicy::kRelocationAware);
  sim.registerModes(0, {ModuleMode{"m", 1}});
  const SimulationResult res =
      sim.run({SwitchRequest{50.0, 0, "m", 0}, SwitchRequest{0.0, 0, "m", 1}});
  ASSERT_EQ(res.records.size(), 2u);
  EXPECT_DOUBLE_EQ(res.records[0].request.at_us, 0.0);
  EXPECT_DOUBLE_EQ(res.records[1].request.at_us, 50.0);
}

TEST(Simulator, RejectsInvalidFloorplans) {
  Fixture f;
  f.fp.regions[1] = Rect{0, 0, 2, 2};  // overlap with region 0
  EXPECT_THROW(ReconfigSimulator(f.problem, f.fp, StorePolicy::kRelocationAware),
               rfp::CheckError);
}

TEST(Simulator, EndToEndOnSdr2Floorplan) {
  // Full pipeline: floorplan SDR2, then run a migration-heavy schedule on
  // the relocatable regions and verify every relocation.
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::SearchResult sol = search::ColumnarSearchSolver(opt).solve(sdr2);
  ASSERT_TRUE(sol.hasSolution());

  ReconfigSimulator sim(sdr2, sol.plan, StorePolicy::kRelocationAware);
  for (const int region :
       {model::kCarrierRecovery, model::kDemodulator, model::kSignalDecoder}) {
    sim.registerModes(region, {ModuleMode{"mode_a", 100u + static_cast<unsigned>(region)},
                               ModuleMode{"mode_b", 200u + static_cast<unsigned>(region)}});
    ASSERT_EQ(sim.targetCount(region), 3) << "home + 2 FC areas";
  }

  std::vector<SwitchRequest> schedule;
  double t = 0;
  for (const int region :
       {model::kCarrierRecovery, model::kDemodulator, model::kSignalDecoder})
    for (int target = 0; target < 3; ++target)
      schedule.push_back(SwitchRequest{t += 10.0, region,
                                       target % 2 ? "mode_a" : "mode_b", target});
  const SimulationResult res = sim.run(std::move(schedule));
  EXPECT_EQ(res.stats.switches, 9);
  EXPECT_EQ(res.stats.relocations, 6);  // target 1 and 2 of each region
  EXPECT_GT(res.stats.makespan_us, 0.0);
  EXPECT_GT(res.stats.total_filter_us, 0.0);
}

}  // namespace
}  // namespace rfp::reconfig
