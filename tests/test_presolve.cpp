// Presolve: activity-based bound tightening, integer rounding, infeasibility
// detection, and knapsack cover-cut separation; plus feature-flag
// equivalence of the branch & bound.
#include <gtest/gtest.h>

#include "lp/model.hpp"
#include "milp/bb.hpp"
#include "milp/presolve.hpp"
#include "support/rng.hpp"

namespace rfp::milp {
namespace {

using lp::LinExpr;
using lp::Model;
using lp::Sense;
using lp::Var;

std::pair<std::vector<double>, std::vector<double>> bounds(const Model& m) {
  std::vector<double> lb, ub;
  for (int j = 0; j < m.numVars(); ++j) {
    lb.push_back(m.var(j).lb);
    ub.push_back(m.var(j).ub);
  }
  return {lb, ub};
}

TEST(Presolve, TightensUpperBoundFromLeRow) {
  Model m;
  const Var x = m.addContinuous(0, 100, "x");
  const Var y = m.addContinuous(2, 100, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 10);
  auto [lb, ub] = bounds(m);
  const PresolveResult r = tightenBounds(m, lb, ub);
  EXPECT_FALSE(r.infeasible);
  EXPECT_NEAR(ub[static_cast<std::size_t>(x.index)], 8.0, 1e-9);   // 10 - lb(y)
  EXPECT_NEAR(ub[static_cast<std::size_t>(y.index)], 10.0, 1e-9);  // 10 - lb(x)
  EXPECT_GE(r.tightened_bounds, 2);
}

TEST(Presolve, TightensLowerBoundFromGeRow) {
  Model m;
  const Var x = m.addContinuous(0, 10, "x");
  const Var y = m.addContinuous(0, 3, "y");
  m.addConstr(LinExpr(x) + y, Sense::kGreaterEqual, 8);
  auto [lb, ub] = bounds(m);
  (void)tightenBounds(m, lb, ub);
  EXPECT_NEAR(lb[static_cast<std::size_t>(x.index)], 5.0, 1e-9);  // 8 - ub(y)
}

TEST(Presolve, NegativeCoefficientTightensLowerBound) {
  Model m;
  const Var x = m.addContinuous(0, 100, "x");
  const Var y = m.addContinuous(0, 4, "y");
  // -x + y <= -6  →  x >= y + 6 >= 6.
  m.addConstr(-1.0 * LinExpr(x) + y, Sense::kLessEqual, -6);
  auto [lb, ub] = bounds(m);
  (void)tightenBounds(m, lb, ub);
  EXPECT_NEAR(lb[static_cast<std::size_t>(x.index)], 6.0, 1e-9);
}

TEST(Presolve, RoundsIntegerBoundsInward) {
  Model m;
  const Var x = m.addInteger(0, 10, "x");
  m.addConstr(2.0 * LinExpr(x), Sense::kLessEqual, 7);  // x <= 3.5 → 3
  auto [lb, ub] = bounds(m);
  (void)tightenBounds(m, lb, ub);
  EXPECT_DOUBLE_EQ(ub[0], 3.0);
}

TEST(Presolve, IteratesToAFixedPoint) {
  Model m;
  const Var x = m.addContinuous(0, 100, "x");
  const Var y = m.addContinuous(0, 100, "y");
  m.addConstr(LinExpr(x), Sense::kLessEqual, 10);
  m.addConstr(LinExpr(y) - x, Sense::kLessEqual, 0);  // y <= x <= 10
  auto [lb, ub] = bounds(m);
  const PresolveResult r = tightenBounds(m, lb, ub);
  EXPECT_NEAR(ub[1], 10.0, 1e-9);
  EXPECT_GE(r.rounds, 2);
}

TEST(Presolve, DetectsInfeasibleRow) {
  Model m;
  const Var x = m.addContinuous(5, 10, "x");
  const Var y = m.addContinuous(5, 10, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 4);  // min activity 10 > 4
  auto [lb, ub] = bounds(m);
  const PresolveResult r = tightenBounds(m, lb, ub);
  EXPECT_TRUE(r.infeasible);
  EXPECT_FALSE(r.detail.empty());
}

TEST(Presolve, EqualityTightensBothDirections) {
  Model m;
  const Var x = m.addContinuous(0, 100, "x");
  const Var y = m.addContinuous(1, 2, "y");
  m.addConstr(LinExpr(x) + y, Sense::kEqual, 10);
  auto [lb, ub] = bounds(m);
  (void)tightenBounds(m, lb, ub);
  EXPECT_NEAR(ub[0], 9.0, 1e-9);  // 10 - lb(y)
  EXPECT_NEAR(lb[0], 8.0, 1e-9);  // 10 - ub(y)
}

TEST(Presolve, BigMRowUntouchedUntilBinaryFixes) {
  // x <= 2 + 100·b: with b free, ub(x) stays; with b fixed to 0 it drops.
  Model m;
  const Var x = m.addContinuous(0, 50, "x");
  const Var b = m.addBinary("b");
  m.addConstr(LinExpr(x) - 100.0 * LinExpr(b), Sense::kLessEqual, 2);
  {
    auto [lb, ub] = bounds(m);
    (void)tightenBounds(m, lb, ub);
    EXPECT_DOUBLE_EQ(ub[0], 50.0);
  }
  {
    auto [lb, ub] = bounds(m);
    ub[static_cast<std::size_t>(b.index)] = 0.0;  // branch b := 0
    (void)tightenBounds(m, lb, ub);
    EXPECT_NEAR(ub[0], 2.0, 1e-9);
  }
}

// ---- cover cuts --------------------------------------------------------------

TEST(CoverCuts, SeparatesAViolatedMinimalCover) {
  // 3x1 + 3x2 + 3x3 <= 5 over binaries; LP point (0.8, 0.8, 0.2) satisfies
  // the row (5.4 > 5? no: 3·1.8=5.4 — violates the row; use a feasible
  // fractional point instead): (0.8, 0.8, 0.03) → 4.89 <= 5 feasible, but
  // any two variables form a cover (6 > 5) with x1 + x2 <= 1 violated at
  // 1.6.
  Model m;
  const Var x1 = m.addBinary("x1");
  const Var x2 = m.addBinary("x2");
  const Var x3 = m.addBinary("x3");
  m.addConstr(3.0 * LinExpr(x1) + 3.0 * LinExpr(x2) + 3.0 * LinExpr(x3),
              Sense::kLessEqual, 5);
  const std::vector<double> x{0.8, 0.8, 0.03};
  const std::vector<CoverCut> cuts = separateCoverCuts(m, x);
  ASSERT_FALSE(cuts.empty());
  const CoverCut& cut = cuts.front();
  EXPECT_EQ(cut.vars.size(), 2u);
  EXPECT_DOUBLE_EQ(cut.rhs, 1.0);
  EXPECT_NEAR(cut.violation, 0.6, 1e-9);
}

TEST(CoverCuts, NoCutWhenPointIsIntegral) {
  Model m;
  const Var x1 = m.addBinary("x1");
  const Var x2 = m.addBinary("x2");
  m.addConstr(3.0 * LinExpr(x1) + 3.0 * LinExpr(x2), Sense::kLessEqual, 5);
  EXPECT_TRUE(separateCoverCuts(m, std::vector<double>{1.0, 0.0}).empty());
}

TEST(CoverCuts, SkipsNonKnapsackRows) {
  Model m;
  const Var x = m.addBinary("x");
  const Var y = m.addContinuous(0, 5, "y");  // continuous → not a knapsack
  m.addConstr(2.0 * LinExpr(x) + y, Sense::kLessEqual, 2);
  const Var z = m.addBinary("z");
  m.addConstr(2.0 * LinExpr(z) - LinExpr(x), Sense::kLessEqual, 1);  // negative coef
  EXPECT_TRUE(separateCoverCuts(m, std::vector<double>{0.9, 4.0, 0.9}).empty());
}

TEST(CoverCuts, CutsNeverExcludeIntegerFeasiblePoints) {
  // Any 0/1 point satisfying the knapsack satisfies every separated cover
  // inequality (validity).
  Model m;
  std::vector<Var> xs;
  const std::vector<double> w{4, 3, 5, 2, 6};
  LinExpr row;
  for (std::size_t i = 0; i < w.size(); ++i) {
    xs.push_back(m.addBinary());
    row += w[i] * LinExpr(xs.back());
  }
  m.addConstr(row, Sense::kLessEqual, 9);

  const std::vector<double> frac{0.9, 0.8, 0.7, 0.6, 0.5};
  const std::vector<CoverCut> cuts = separateCoverCuts(m, frac, 64, 1e-9);
  for (int mask = 0; mask < (1 << 5); ++mask) {
    double weight = 0;
    for (int i = 0; i < 5; ++i)
      if (mask & (1 << i)) weight += w[static_cast<std::size_t>(i)];
    if (weight > 9) continue;  // not feasible for the row
    for (const CoverCut& cut : cuts) {
      int lhs = 0;
      for (const int j : cut.vars) lhs += (mask >> j) & 1;
      EXPECT_LE(lhs, static_cast<int>(cut.rhs) + 0) << "mask " << mask;
    }
  }
}

// ---- feature-flag equivalence -------------------------------------------------

TEST(MilpFeatures, AllFlagCombinationsAgreeOnRandomKnapsacks) {
  Rng rng(99);
  for (int trial = 0; trial < 12; ++trial) {
    Model m;
    LinExpr weight_row, value;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      const Var x = m.addBinary();
      weight_row += (1.0 + static_cast<double>(rng.nextBelow(9))) * LinExpr(x);
      value += (1.0 + static_cast<double>(rng.nextBelow(20))) * LinExpr(x);
    }
    m.addConstr(weight_row, Sense::kLessEqual, 15);
    m.setObjective(value, lp::ObjSense::kMaximize);

    double reference = -1;
    for (const bool presolve : {false, true})
      for (const bool cuts : {false, true})
        for (const bool pseudo : {false, true}) {
          MilpSolver::Options opt;
          opt.enable_presolve = presolve;
          opt.enable_cover_cuts = cuts;
          opt.pseudo_cost_branching = pseudo;
          const MipResult res = MilpSolver(opt).solve(m);
          ASSERT_EQ(res.status, MipStatus::kOptimal);
          if (reference < 0) reference = res.objective;
          EXPECT_NEAR(res.objective, reference, 1e-6)
              << "trial " << trial << " presolve=" << presolve << " cuts=" << cuts
              << " pseudo=" << pseudo;
        }
  }
}

TEST(MilpFeatures, PresolveProvesInfeasibilityWithoutSearch) {
  Model m;
  const Var x = m.addInteger(3, 10, "x");
  const Var y = m.addInteger(3, 10, "y");
  m.addConstr(LinExpr(x) + y, Sense::kLessEqual, 5);
  m.setObjective(LinExpr(x), lp::ObjSense::kMinimize);
  const MipResult res = MilpSolver().solve(m);
  EXPECT_EQ(res.status, MipStatus::kInfeasible);
  EXPECT_EQ(res.nodes, 0);
}

}  // namespace
}  // namespace rfp::milp
