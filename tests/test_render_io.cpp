// Tests for rendering (ASCII/SVG) and serialization (JSON/CSV).
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "io/json.hpp"
#include "io/results.hpp"
#include "model/floorplan.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

namespace rfp {
namespace {

using device::Rect;

model::Floorplan solvedSdr2(const model::FloorplanProblem& sdr2) {
  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr2);
  EXPECT_TRUE(res.hasSolution());
  return res.plan;
}

TEST(Render, AsciiDeviceShowsForbiddenAndTypes) {
  const std::string art = render::asciiDevice(device::virtex5FX70T());
  EXPECT_NE(art.find('#'), std::string::npos);   // PPC440
  EXPECT_NE(art.find('D'), std::string::npos);   // DSP columns
  EXPECT_NE(art.find('B'), std::string::npos);   // BRAM columns
}

TEST(Render, AsciiFloorplanContainsRegionsAndFcAreas) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  const model::Floorplan fp = solvedSdr2(sdr2);
  const std::string art = render::ascii(sdr2, fp);
  for (char c : {'A', 'B', 'C', 'D', 'E'}) EXPECT_NE(art.find(c), std::string::npos);
  // FC areas of carrier recovery (region 1 → 'b').
  EXPECT_NE(art.find('b'), std::string::npos);
  EXPECT_NE(art.find("matched_filter"), std::string::npos);
}

TEST(Render, SvgIsWellFormedEnough) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  const model::Floorplan fp = solvedSdr2(sdr2);
  const std::string svg = render::svg(sdr2, fp);
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("video_decoder"), std::string::npos);
  EXPECT_NE(svg.find("stroke-dasharray"), std::string::npos);  // FC hatching
}

TEST(Json, WriterProducesValidStructure) {
  io::JsonWriter w;
  w.beginObject();
  w.key("name").value("x\"y");
  w.key("list").beginArray().value(1).value(2.5).value(true).endArray();
  w.key("nested").beginObject().key("k").value("v").endObject();
  w.endObject();
  EXPECT_EQ(w.str(), "{\"name\":\"x\\\"y\",\"list\":[1,2.5,true],\"nested\":{\"k\":\"v\"}}");
}

TEST(Json, CsvQuotesSpecialFields) {
  io::CsvWriter csv;
  csv.row({"a", "b,c", "d\"e"});
  EXPECT_EQ(csv.str(), "a,\"b,c\",\"d\"\"e\"\n");
}

TEST(Io, ProblemJsonContainsTableOne) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const std::string json = io::problemToJson(sdr);
  EXPECT_NE(json.find("\"matched_filter\""), std::string::npos);
  EXPECT_NE(json.find("\"min_frames\":1040"), std::string::npos);
  EXPECT_NE(json.find("\"min_frames\":2180"), std::string::npos);
}

TEST(Io, FloorplanJsonRoundsTripCosts) {
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  const model::Floorplan fp = solvedSdr2(sdr2);
  const std::string json = io::floorplanToJson(sdr2, fp);
  EXPECT_NE(json.find("\"wasted_frames\""), std::string::npos);
  EXPECT_NE(json.find("\"fc_areas\""), std::string::npos);
  EXPECT_NE(json.find("\"placed\":true"), std::string::npos);
}

}  // namespace
}  // namespace rfp
