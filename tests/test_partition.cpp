// Tests for columnar partitioning (Sec. III-B), the general 2-D
// partitioning of [10], and area compatibility (Definitions .1/.2, Fig. 1).
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "partition/columnar.hpp"
#include "partition/compatibility.hpp"
#include "partition/partition2d.hpp"

namespace rfp::partition {
namespace {

using device::Device;
using device::Rect;

TEST(Columnar, MergesAdjacentSameTypeColumns) {
  const Device dev = device::columnarFromPattern("t", "CCBBCD", 4);
  const auto part = columnarPartition(dev);
  ASSERT_TRUE(part.has_value());
  ASSERT_EQ(part->portions.size(), 4u);  // CC | BB | C | D
  EXPECT_EQ(part->portions[0].w, 2);
  EXPECT_EQ(part->portions[1].w, 2);
  EXPECT_EQ(part->portions[2].w, 1);
  EXPECT_EQ(part->portions[3].w, 1);
  EXPECT_EQ(validateColumnarPartition(dev, *part), "");
}

TEST(Columnar, PropertyThreeAndFourHold) {
  const auto part = columnarPartition(device::virtex5FX70T());
  ASSERT_TRUE(part.has_value());
  for (std::size_t i = 1; i < part->portions.size(); ++i) {
    EXPECT_NE(part->portions[i].type, part->portions[i - 1].type);  // Property .3
    EXPECT_EQ(part->portions[i].x, part->portions[i - 1].x + part->portions[i - 1].w);
  }
  EXPECT_EQ(validateColumnarPartition(device::virtex5FX70T(), *part), "");
}

TEST(Columnar, Fx70tPortionCount) {
  // Pattern CC B CCCC D CCCCC B CCC B CCCC D CCCCC B CCCCCC B CCCCCCCC
  // → 15 alternating portions.
  const auto part = columnarPartition(device::virtex5FX70T());
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->portions.size(), 15u);
  EXPECT_EQ(part->numTypes(), 3);
}

TEST(Columnar, ForbiddenTilesReplacedBySameColumnType) {
  // Step 1 (Fig. 2b): a forbidden area does not split columnar portions.
  Device dev = device::columnarFromPattern("t", "CCCC", 4);
  dev.addForbidden(Rect{1, 1, 2, 2}, "hard");
  const auto part = columnarPartition(dev);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->portions.size(), 1u);  // single CLB portion, full device
  ASSERT_EQ(part->forbidden.size(), 1u); // step 6: reported separately
  EXPECT_EQ(part->forbidden[0], (Rect{1, 1, 2, 2}));
}

TEST(Columnar, FailsOnNonColumnarDevice) {
  EXPECT_FALSE(columnarPartition(device::brokenColumnDevice()).has_value());
}

TEST(Columnar, PortionAtLocatesColumns) {
  const Device dev = device::columnarFromPattern("t", "CCBD", 2);
  const auto part = columnarPartition(dev);
  ASSERT_TRUE(part.has_value());
  EXPECT_EQ(part->portionAt(0), 0);
  EXPECT_EQ(part->portionAt(1), 0);
  EXPECT_EQ(part->portionAt(2), 1);
  EXPECT_EQ(part->portionAt(3), 2);
  EXPECT_EQ(part->portionAt(7), -1);
}

TEST(Partition2D, TilesNonColumnarDevices) {
  const Device dev = device::brokenColumnDevice();
  const auto portions = partition2D(dev);
  EXPECT_EQ(validatePartition2D(dev, portions), "");
  EXPECT_GT(portions.size(), 1u);
}

TEST(Partition2D, SinglePortionForUniformDevice) {
  const Device dev = device::uniformDevice(5, 4);
  const auto portions = partition2D(dev);
  ASSERT_EQ(portions.size(), 1u);
  EXPECT_EQ(portions[0].rect, (Rect{0, 0, 5, 4}));
}

// ---- compatibility (Fig. 1) -----------------------------------------------

TEST(Compatibility, Figure1Scenario) {
  // Two-type device mirroring Fig. 1: areas with the same shape/size are
  // compatible iff tile types align at the same relative positions.
  const Device dev = device::columnarFromPattern("t", "CBCCBC", 3);
  // A = columns 0-1 (C B), B-area = columns 3-4 (C B): compatible.
  EXPECT_TRUE(areCompatible(dev, Rect{0, 0, 2, 2}, Rect{3, 0, 2, 2}));
  // C-area = columns 1-2 (B C): same shape and resources, wrong order.
  EXPECT_FALSE(areCompatible(dev, Rect{0, 0, 2, 2}, Rect{1, 0, 2, 2}));
}

TEST(Compatibility, VerticalTranslationAlwaysCompatibleOnColumnarDevices) {
  const Device dev = device::virtex5FX70T();
  const Rect a{5, 0, 4, 3};
  EXPECT_TRUE(areCompatible(dev, a, Rect{5, 3, 4, 3}));
  EXPECT_TRUE(areCompatible(dev, a, Rect{5, 5, 4, 3}));
}

TEST(Compatibility, SizeMismatchIsIncompatible) {
  const Device dev = device::uniformDevice(6, 6);
  EXPECT_FALSE(areCompatible(dev, Rect{0, 0, 2, 2}, Rect{3, 0, 3, 2}));
  EXPECT_FALSE(areCompatible(dev, Rect{0, 0, 2, 2}, Rect{3, 0, 2, 3}));
}

TEST(Compatibility, FreeCompatibleRespectsOccupancyAndForbidden) {
  Device dev = device::uniformDevice(8, 4);
  dev.addForbidden(Rect{6, 0, 2, 2}, "f");
  const Rect src{0, 0, 2, 2};
  const std::vector<Rect> occupied{src, Rect{2, 0, 2, 2}};
  EXPECT_TRUE(isFreeCompatible(dev, src, Rect{4, 0, 2, 2}, occupied));
  EXPECT_FALSE(isFreeCompatible(dev, src, Rect{2, 0, 2, 2}, occupied));  // occupied
  EXPECT_FALSE(isFreeCompatible(dev, src, Rect{6, 0, 2, 2}, occupied));  // forbidden
  EXPECT_FALSE(isFreeCompatible(dev, src, Rect{5, 0, 2, 2}, occupied));  // hits forbidden col 6
}

TEST(Compatibility, EnumerationMatchesDefinition) {
  const Device dev = device::columnarFromPattern("t", "CBCCBC", 3);
  const Rect src{0, 0, 2, 2};
  const auto placements = enumerateCompatiblePlacements(dev, src);
  // Column spans with pattern (C,B): x=0 and x=3; y in {0,1}.
  ASSERT_EQ(placements.size(), 4u);
  for (const Rect& r : placements) {
    EXPECT_TRUE(areCompatible(dev, src, r));
    EXPECT_TRUE(r.x == 0 || r.x == 3);
  }
}

TEST(Compatibility, SelfIsAlwaysCompatible) {
  const Device dev = device::virtex5FX70T();
  const Rect r{7, 2, 6, 5};
  EXPECT_TRUE(areCompatible(dev, r, r));
}

}  // namespace
}  // namespace rfp::partition
