// Tests for the device model, builders and the text-format parser.
#include <gtest/gtest.h>

#include "device/builders.hpp"
#include "device/parser.hpp"
#include "support/check.hpp"

namespace rfp::device {
namespace {

TEST(Rect, GeometryBasics) {
  const Rect r{2, 1, 3, 2};
  EXPECT_EQ(r.x2(), 5);
  EXPECT_EQ(r.y2(), 3);
  EXPECT_EQ(r.area(), 6);
  EXPECT_TRUE(r.contains(2, 1));
  EXPECT_TRUE(r.contains(4, 2));
  EXPECT_FALSE(r.contains(5, 2));
  EXPECT_DOUBLE_EQ(r.centerX(), 3.5);
}

TEST(Rect, OverlapAndIntersection) {
  const Rect a{0, 0, 4, 4}, b{3, 3, 4, 4}, c{4, 0, 2, 2};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, (Rect{3, 3, 1, 1}));
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Device, Fx70tMatchesPaperResourceMix) {
  const Device dev = virtex5FX70T();
  EXPECT_EQ(dev.width(), 44);
  EXPECT_EQ(dev.height(), 8);
  EXPECT_TRUE(dev.isColumnar());
  const std::vector<int> totals = dev.totalTiles(false);
  EXPECT_EQ(totals[static_cast<std::size_t>(dev.tileTypeId("DSP"))], 16);   // 128 DSP48E
  EXPECT_EQ(totals[static_cast<std::size_t>(dev.tileTypeId("BRAM"))], 40);  // 160 BRAM36 raw
  EXPECT_EQ(dev.forbidden().size(), 1u);  // PPC440
}

TEST(Device, PaperFrameCountsPerTileType) {
  const Device dev = virtex5FX70T();
  EXPECT_EQ(dev.tileType(dev.tileTypeId("CLB")).frames, 36);
  EXPECT_EQ(dev.tileType(dev.tileTypeId("BRAM")).frames, 30);
  EXPECT_EQ(dev.tileType(dev.tileTypeId("DSP")).frames, 28);
}

TEST(Device, TableOneFrameArithmetic) {
  // The paper's Table I last column is reproduced exactly by the model:
  // matched filter 25 CLB + 5 DSP tiles = 25·36 + 5·28 = 1040 frames, etc.
  EXPECT_EQ(25 * 36 + 5 * 28, 1040);
  EXPECT_EQ(7 * 36 + 1 * 28, 280);
  EXPECT_EQ(5 * 36 + 2 * 30, 240);
  EXPECT_EQ(12 * 36 + 1 * 30, 462);
  EXPECT_EQ(55 * 36 + 2 * 30 + 5 * 28, 2180);
}

TEST(Device, HistogramAndFrames) {
  const Device dev = columnarFromPattern("t", "CBD", 2);
  const std::vector<int> hist = dev.tileHistogram(Rect{0, 0, 3, 2});
  EXPECT_EQ(hist[0], 2);
  EXPECT_EQ(hist[1], 2);
  EXPECT_EQ(hist[2], 2);
  EXPECT_EQ(dev.framesInRect(Rect{0, 0, 3, 1}), 36 + 30 + 28);
  EXPECT_EQ(dev.totalFrames(), 2 * (36 + 30 + 28));
}

TEST(Device, ForbiddenAreaQueries) {
  Device dev = uniformDevice(6, 4);
  dev.addForbidden(Rect{2, 1, 2, 2}, "hard");
  EXPECT_TRUE(dev.inForbidden(2, 1));
  EXPECT_TRUE(dev.inForbidden(3, 2));
  EXPECT_FALSE(dev.inForbidden(1, 1));
  EXPECT_TRUE(dev.rectHitsForbidden(Rect{0, 0, 3, 2}));
  EXPECT_FALSE(dev.rectHitsForbidden(Rect{0, 0, 2, 4}));
  EXPECT_THROW(dev.addForbidden(Rect{5, 0, 3, 1}), CheckError);
}

TEST(Device, UsableTotalsExcludeForbidden) {
  Device dev = uniformDevice(4, 4);
  dev.addForbidden(Rect{0, 0, 2, 2}, "f");
  EXPECT_EQ(dev.totalTiles(false)[0], 16);
  EXPECT_EQ(dev.totalTiles(true)[0], 12);
}

TEST(Device, ColumnSignature) {
  const Device dev = columnarFromPattern("t", "CCBDC", 3);
  const std::vector<int> sig = dev.columnSignature(Rect{1, 0, 3, 2});
  ASSERT_EQ(sig.size(), 3u);
  EXPECT_EQ(sig[0], 0);
  EXPECT_EQ(sig[1], 1);
  EXPECT_EQ(sig[2], 2);
}

TEST(Device, BrokenColumnDeviceIsNotColumnar) {
  const Device dev = brokenColumnDevice();
  EXPECT_FALSE(dev.isColumnar());
  EXPECT_THROW((void)dev.columnType(2), CheckError);
}

TEST(Device, GridConstructorValidation) {
  std::vector<TileType> types = virtex5TileTypes();
  EXPECT_THROW(Device("bad", 2, 2, types, std::vector<int>{0, 0, 0}, true), CheckError);
  EXPECT_THROW(Device("bad", 2, 2, types, std::vector<int>{0, 0, 0, 9}, true), CheckError);
}

TEST(Parser, RoundTripsColumnarDevice) {
  const Device dev = virtex5FX70T();
  const std::string text = formatDevice(dev);
  const Device back = parseDevice(text);
  EXPECT_EQ(back.name(), dev.name());
  EXPECT_EQ(back.width(), dev.width());
  EXPECT_EQ(back.height(), dev.height());
  for (int x = 0; x < dev.width(); ++x)
    EXPECT_EQ(back.tileType(back.columnType(x)).name, dev.tileType(dev.columnType(x)).name);
  ASSERT_EQ(back.forbidden().size(), dev.forbidden().size());
  EXPECT_EQ(back.forbidden()[0], dev.forbidden()[0]);
}

TEST(Parser, ParsesMinimalDevice) {
  const Device dev = parseDevice(R"(
# comment
device demo
rows 4
tiletype C CLB frames=36 CLB=20
tiletype B BRAM frames=30 BRAM36=4
columns CCBCC
forbidden 1 1 2 2 hardblock
)");
  EXPECT_EQ(dev.name(), "demo");
  EXPECT_EQ(dev.width(), 5);
  EXPECT_EQ(dev.height(), 4);
  EXPECT_EQ(dev.tileTypeId("BRAM"), 1);
  EXPECT_EQ(dev.columnType(2), 1);
  EXPECT_EQ(dev.tileType(1).resources.at("BRAM36"), 4);
  EXPECT_TRUE(dev.inForbidden(2, 2));
}

TEST(Parser, RejectsMalformedInput) {
  EXPECT_THROW(parseDevice("rows 4\ncolumns CC\n"), CheckError);  // no tiletypes
  EXPECT_THROW(parseDevice("tiletype C CLB frames=36\ncolumns CX\nrows 2\n"), CheckError);
  EXPECT_THROW(parseDevice("tiletype C CLB frames=36\ncolumns CC\n"), CheckError);  // no rows
  EXPECT_THROW(parseDevice("tiletype C CLB frames=0\ncolumns C\nrows 1\n"), CheckError);
  EXPECT_THROW(parseDevice("bogus keyword\n"), CheckError);
}

TEST(Builders, Virtex7StyleIsColumnarAndLarge) {
  const Device dev = virtex7Style();
  EXPECT_TRUE(dev.isColumnar());
  EXPECT_GT(dev.width(), 80);
  EXPECT_GT(dev.totalFrames(), virtex5FX70T().totalFrames());
}

}  // namespace
}  // namespace rfp::device
