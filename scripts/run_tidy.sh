#!/usr/bin/env bash
# clang-tidy gate over src/ (config: .clang-tidy at the repo root).
#
# Usage:
#   scripts/run_tidy.sh [--changed [BASE]] [--build-dir DIR] [--jobs N]
#
#   (default)        lint every .cpp under src/
#   --changed        lint only files that differ from BASE (default: the
#                    merge-base with origin/main, falling back to HEAD~1) —
#                    the fast pre-push loop; CI runs the full sweep
#   --build-dir DIR  compilation database location (default: build;
#                    configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON)
#   --jobs N         parallel clang-tidy processes (default: nproc)
#
# Exits non-zero on any finding (WarningsAsErrors: '*' in .clang-tidy), on a
# missing compile_commands.json, or on a missing clang-tidy binary — the
# gate must fail loudly, not skip silently, in CI. Set RFP_TIDY_ALLOW_MISSING=1
# to turn a missing binary into a warning for local machines without LLVM.
set -euo pipefail

cd "$(dirname "$0")/.."

build_dir=build
mode=full
base=""
jobs="$(nproc 2>/dev/null || echo 2)"

while [[ $# -gt 0 ]]; do
  case "$1" in
    --changed)
      mode=changed
      if [[ $# -gt 1 && "${2:0:2}" != "--" ]]; then
        base="$2"
        shift
      fi
      ;;
    --build-dir)
      build_dir="$2"
      shift
      ;;
    --jobs)
      jobs="$2"
      shift
      ;;
    *)
      echo "run_tidy.sh: unknown argument: $1" >&2
      exit 2
      ;;
  esac
  shift
done

tidy="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$tidy" > /dev/null 2>&1; then
  if [[ "${RFP_TIDY_ALLOW_MISSING:-0}" == "1" ]]; then
    echo "run_tidy.sh: $tidy not found; skipping (RFP_TIDY_ALLOW_MISSING=1)" >&2
    exit 0
  fi
  echo "run_tidy.sh: $tidy not found (install clang-tidy, or set CLANG_TIDY)" >&2
  exit 1
fi

db="$build_dir/compile_commands.json"
if [[ ! -f "$db" ]]; then
  echo "run_tidy.sh: $db not found." >&2
  echo "  configure first: cmake -B $build_dir -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

declare -a files
if [[ "$mode" == "changed" ]]; then
  if [[ -z "$base" ]]; then
    base="$(git merge-base HEAD origin/main 2>/dev/null || git rev-parse HEAD~1)"
  fi
  # Changed headers pull in their including .cpp files via HeaderFilterRegex,
  # so linting changed translation units (plus TUs that include a changed
  # header) covers header edits too.
  mapfile -t changed < <(git diff --name-only "$base" -- 'src/**/*.cpp' 'src/**/*.hpp' 'src/*.cpp' 'src/*.hpp')
  declare -A tu_set=()
  for f in "${changed[@]}"; do
    [[ -f "$f" ]] || continue  # deleted files
    if [[ "$f" == *.cpp ]]; then
      tu_set["$f"]=1
    else
      hdr="$(basename "$f")"
      while IFS= read -r tu; do
        tu_set["$tu"]=1
      done < <(grep -rl --include='*.cpp' -F "$hdr" src/ || true)
    fi
  done
  files=("${!tu_set[@]}")
  if [[ ${#files[@]} -eq 0 ]]; then
    echo "run_tidy.sh: no changed sources vs $base"
    exit 0
  fi
else
  mapfile -t files < <(find src -name '*.cpp' | sort)
fi

echo "run_tidy.sh: linting ${#files[@]} file(s) with $tidy (-p $build_dir, -j $jobs)"
# -warnings-as-errors comes from .clang-tidy; --quiet suppresses the
# "N warnings generated" noise from system headers.
printf '%s\n' "${files[@]}" |
  xargs -P "$jobs" -n 4 "$tidy" -p "$build_dir" --quiet
echo "run_tidy.sh: clean"
