#!/usr/bin/env python3
"""Repo-contract linter: mechanical checks the compiler cannot express.

Rules (each violation prints as ``path:line: [rule] message``):

  raw-sync       No raw ``std::mutex`` / ``std::lock_guard`` / ``std::unique_lock``
                 / ``std::condition_variable`` (and friends) anywhere under src/
                 except src/support/sync.hpp, which wraps them in the
                 thread-safety-annotated types everything else must use.
                 ``std::thread`` is additionally restricted to the worker-pool
                 internals listed in THREAD_ALLOWLIST.
  engine-contract  Every engine entry point in ENGINE_FILES must poll its
                 cooperative stop flag (``stop->load(...)``) and thread the
                 solve-scoped ``telemetry::Context`` — engines that ignore
                 either break portfolio cancellation or tracing silently.
  bench-meta     Any bench/*.cpp that emits a .json artifact must include
                 bench_meta.hpp so the artifact carries the provenance block
                 (git sha, compiler, flags) the comparison tooling keys on.
  nolint-reason  Every NOLINT / NOLINTNEXTLINE must name the suppressed check
                 and carry a ``: reason`` string — bare suppressions rot.

Usage:
  scripts/lint_contracts.py [--root DIR]   lint the repository (default: the
                                           script's parent repo)
  scripts/lint_contracts.py --self-test    run the rule engine against the
                                           fixtures in tests/lint_fixtures/

Exit status: 0 clean, 1 violations (or fixture mismatches), 2 usage error.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path
from typing import Callable, List, NamedTuple

# --- repo-specific contract data -------------------------------------------

# Files allowed to spawn std::thread directly: the driver/solver worker pools
# and the progress ticker. Everything else must go through these layers.
THREAD_ALLOWLIST = {
    "src/driver/batch.cpp",
    "src/driver/portfolio.cpp",
    "src/driver/backend_runner.cpp",
    "src/driver/backend_runner.hpp",
    "src/milp/bb_parallel.cpp",
    "src/search/solver.cpp",
}

# The file that is allowed to mention raw standard sync primitives: it wraps
# them in the annotated capability types (rfp::sync) everything else uses.
SYNC_WRAPPER = "src/support/sync.hpp"

# Engine entry points: long-running solve loops that must honor cooperative
# cancellation and emit solve-scoped telemetry.
ENGINE_FILES = [
    "src/baseline/annealer.cpp",
    "src/fp/heuristic.cpp",
    "src/fp/milp_floorplanner.cpp",
    "src/search/solver.cpp",
    "src/milp/bb.cpp",
    "src/milp/bb_parallel.cpp",
]

RAW_SYNC_TOKENS = [
    "std::mutex",
    "std::timed_mutex",
    "std::recursive_mutex",
    "std::shared_mutex",
    "std::lock_guard",
    "std::unique_lock",
    "std::scoped_lock",
    "std::shared_lock",
    "std::condition_variable",
]

STOP_POLL_RE = re.compile(r"stop\s*(?:->|\.)\s*load\s*\(")
TELEMETRY_RE = re.compile(r"\btelemetry::")
JSON_EMIT_RE = re.compile(r"\.json\"")
BENCH_META_RE = re.compile(r'#\s*include\s*"bench_meta\.hpp"')
# A well-formed suppression: NOLINT or NOLINTNEXTLINE, a non-empty check
# list in parens, then ": <reason>".
NOLINT_OK_RE = re.compile(r"NOLINT(?:NEXTLINE)?\([^)\n]+\)\s*:\s*\S")
NOLINT_ANY_RE = re.compile(r"NOLINT")

CPP_SUFFIXES = {".cpp", ".hpp", ".h", ".cc"}


class Violation(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


def strip_comments(text: str) -> str:
    """Blanks out // and /* */ comments, preserving line structure so line
    numbers computed against the stripped text still match the source."""

    def blank(match: re.Match[str]) -> str:
        return re.sub(r"[^\n]", " ", match.group(0))

    text = re.sub(r"/\*.*?\*/", blank, text, flags=re.S)
    return re.sub(r"//[^\n]*", blank, text)


def line_of(text: str, offset: int) -> int:
    return text.count("\n", 0, offset) + 1


# --- rules ------------------------------------------------------------------
# Each rule takes (repo-relative posix path, raw text) and returns violations.


def rule_raw_sync(rel: str, text: str) -> List[Violation]:
    if not rel.startswith("src/") or rel == SYNC_WRAPPER:
        return []
    out: List[Violation] = []
    code = strip_comments(text)
    for token in RAW_SYNC_TOKENS:
        for m in re.finditer(re.escape(token) + r"\b", code):
            out.append(Violation(
                rel, line_of(code, m.start()), "raw-sync",
                f"{token} is banned outside {SYNC_WRAPPER}; use the annotated "
                f"rfp::sync types (Mutex, MutexLock, UniqueLock, CondVar)"))
    if rel not in THREAD_ALLOWLIST:
        for m in re.finditer(r"std::thread\b", code):
            out.append(Violation(
                rel, line_of(code, m.start()), "raw-sync",
                "std::thread is restricted to the pool internals "
                "(driver/batch, driver/portfolio, driver/backend_runner, "
                "milp/bb_parallel, search/solver)"))
    return out


def rule_engine_contract(rel: str, text: str) -> List[Violation]:
    if rel not in ENGINE_FILES:
        return []
    out: List[Violation] = []
    code = strip_comments(text)
    if not STOP_POLL_RE.search(code):
        out.append(Violation(
            rel, 1, "engine-contract",
            "engine never polls its cooperative stop flag (expected "
            "`stop->load(...)`); portfolio cancellation would hang on it"))
    if not TELEMETRY_RE.search(code):
        out.append(Violation(
            rel, 1, "engine-contract",
            "engine does not thread telemetry::Context (spans/counters); "
            "solves through it would be invisible to tracing"))
    return out


def rule_bench_meta(rel: str, text: str) -> List[Violation]:
    if not (rel.startswith("bench/") and rel.endswith(".cpp")):
        return []
    code = strip_comments(text)
    if JSON_EMIT_RE.search(code) and not BENCH_META_RE.search(code):
        return [Violation(
            rel, 1, "bench-meta",
            "bench emits a .json artifact but does not include "
            "bench_meta.hpp; artifacts must carry the provenance block")]
    return []


def rule_nolint_reason(rel: str, text: str) -> List[Violation]:
    out: List[Violation] = []
    for i, line in enumerate(text.splitlines(), start=1):
        if NOLINT_ANY_RE.search(line) and not NOLINT_OK_RE.search(line):
            out.append(Violation(
                rel, i, "nolint-reason",
                "NOLINT must name the check and give a reason: "
                "`NOLINT(check-name): why this is safe`"))
    return out


RULES: List[Callable[[str, str], List[Violation]]] = [
    rule_raw_sync,
    rule_engine_contract,
    rule_bench_meta,
    rule_nolint_reason,
]


def lint_file(rel: str, text: str) -> List[Violation]:
    out: List[Violation] = []
    for rule in RULES:
        out.extend(rule(rel, text))
    return out


# --- repo walk --------------------------------------------------------------


def lint_repo(root: Path) -> List[Violation]:
    out: List[Violation] = []
    for top in ("src", "tests", "bench"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in CPP_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            if "lint_fixtures" in rel:
                continue  # fixture files deliberately violate the rules
            out.extend(lint_file(rel, path.read_text(encoding="utf-8")))
    # An engine rename must update ENGINE_FILES, not silently drop coverage.
    for rel in ENGINE_FILES:
        if not (root / rel).is_file():
            out.append(Violation(
                rel, 1, "engine-contract",
                "listed engine file is missing; update ENGINE_FILES in "
                "scripts/lint_contracts.py if it moved"))
    return out


# --- self-test --------------------------------------------------------------

FIXTURE_RE = re.compile(
    r"lint-fixture:\s*path=(?P<path>\S+)\s+expect=(?P<expect>\S+)")


def self_test(root: Path) -> int:
    fixtures = sorted((root / "tests" / "lint_fixtures").glob("*.fixture"))
    if not fixtures:
        print("lint_contracts.py: no fixtures found under tests/lint_fixtures/",
              file=sys.stderr)
        return 1
    failures = 0
    for fixture in fixtures:
        text = fixture.read_text(encoding="utf-8")
        m = FIXTURE_RE.search(text)
        if not m:
            print(f"FAIL {fixture.name}: missing `lint-fixture: path=... "
                  f"expect=...` directive")
            failures += 1
            continue
        expect = set() if m.group("expect") == "clean" else \
            set(m.group("expect").split(","))
        # Drop the directive line so it cannot trip any rule itself.
        body = "\n".join(l for l in text.splitlines()
                         if "lint-fixture:" not in l)
        got = {v.rule for v in lint_file(m.group("path"), body)}
        if got == expect:
            print(f"ok   {fixture.name}: {sorted(got) or ['clean']}")
        else:
            print(f"FAIL {fixture.name}: expected {sorted(expect) or ['clean']}"
                  f", got {sorted(got) or ['clean']}")
            failures += 1
    print(f"lint_contracts.py self-test: {len(fixtures) - failures}/"
          f"{len(fixtures)} fixtures passed")
    return 1 if failures else 0


# --- main -------------------------------------------------------------------


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path,
                        default=Path(__file__).resolve().parent.parent,
                        help="repository root (default: the script's repo)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the rule engine against tests/lint_fixtures/")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test(args.root)

    violations = lint_repo(args.root)
    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"lint_contracts.py: {len(violations)} violation(s)",
              file=sys.stderr)
        return 1
    print("lint_contracts.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
