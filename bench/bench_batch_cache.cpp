// Batch result-cache bench: does the cache actually turn repeated-problem
// batches into lookups, and is every served plan trustworthy?
//
// One experiment over a duplicated batch (each distinct instance appears
// three times, interleaved — 2/3 duplicates, comfortably past the >= 50%
// the acceptance bar asks for):
//
//  * no-cache — the batch solved with caching disabled: every duplicate
//    pays the full engine cost again (the pre-cache baseline).
//  * cold     — a fresh Driver with the cache on: first occurrences miss
//    and solve, duplicates scheduled after their original completes are
//    served from the store mid-batch.
//  * warm     — the same batch re-run on the same Driver: every problem
//    must be a cache hit, and every served plan must pass model::check
//    against its own problem. The wall-time ratio warm/cold is the
//    headline number; the acceptance bar is <= 0.6x, the CI gate fails at
//    anything >= 1.0x (a cache that makes reruns *slower* regressed) or on
//    any checker-rejected or status-changed hit.
//
// A second, informational experiment bounds the duplicated batch with an
// overall deadline and records how many problems the fair budget slices
// managed to dispatch (first-come-first-served used to starve the tail).
//
// Usage: bench_batch_cache [--smoke]
//   --smoke  same instances, gates enforced, JSON to
//            BENCH_batch_cache.smoke.json (CI uploads it as an artifact;
//            the tracked full-run snapshot at the repo root is untouched).
//   full     writes BENCH_batch_cache.json into the current directory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "device/builders.hpp"
#include "driver/cache.hpp"
#include "driver/driver.hpp"
#include "io/json.hpp"
#include "model/floorplan.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

struct BatchFigures {
  double seconds = 0.0;
  int solved = 0;
  int cache_hits = 0;
  int checker_rejects = 0;
  int status_mismatches = 0;  // vs the cold run (warm only)
};

struct Record {
  std::string name;
  int batch_size = 0;
  int distinct = 0;
  double duplicate_fraction = 0.0;
  BatchFigures nocache, cold, warm;
  driver::CacheStats cache_stats;  // after the warm run
  double warm_ratio = 0.0;         // warm.seconds / cold.seconds
  // Fair-budget experiment: dispatched problems under an overall deadline.
  double deadline_seconds = 0.0;
  int deadline_dispatched = 0;
  int deadline_solved = 0;
};

std::vector<model::FloorplanProblem> distinctInstances(const device::Device& dev, int want) {
  model::GeneratorOptions gopt;
  gopt.num_regions = 4;
  gopt.max_region_width = 5;
  gopt.max_region_height = 4;
  gopt.num_nets = 3;
  gopt.fc_per_region = 1;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < static_cast<std::size_t>(want) && seed < 80;
       ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  return problems;
}

BatchFigures runBatch(const driver::Driver& drv,
                      const std::vector<const model::FloorplanProblem*>& ptrs,
                      const driver::SolveRequest& req,
                      const std::vector<driver::SolveResponse>* reference,
                      std::vector<driver::SolveResponse>* out_responses) {
  Stopwatch watch;
  const std::vector<driver::SolveResponse> res = drv.solveBatch(ptrs, req, /*pool_threads=*/2);
  BatchFigures f;
  f.seconds = watch.seconds();
  for (std::size_t i = 0; i < res.size(); ++i) {
    f.solved += res[i].hasSolution() ? 1 : 0;
    f.cache_hits += res[i].cache_hit ? 1 : 0;
    if (res[i].hasSolution() && !model::check(*ptrs[i], res[i].plan).empty())
      ++f.checker_rejects;
    if (reference && res[i].status != (*reference)[i].status) ++f.status_mismatches;
  }
  if (out_responses) *out_responses = res;
  return f;
}

void writeJson(const Record& rec, const char* path) {
  io::JsonWriter w;
  w.beginObject();
  bench::writeBenchMeta(w);
  w.key("bench").value("batch_cache");
  w.key("batch_size").value(rec.batch_size);
  w.key("distinct_problems").value(rec.distinct);
  w.key("duplicate_fraction").value(rec.duplicate_fraction);
  const auto fig = [&w](const char* key, const BatchFigures& f) {
    w.key(key).beginObject();
    w.key("seconds").value(f.seconds);
    w.key("solved").value(f.solved);
    w.key("cache_hits").value(f.cache_hits);
    w.key("checker_rejects").value(f.checker_rejects);
    w.key("status_mismatches").value(f.status_mismatches);
    w.endObject();
  };
  fig("no_cache", rec.nocache);
  fig("cold", rec.cold);
  fig("warm", rec.warm);
  w.key("warm_ratio").value(rec.warm_ratio);
  w.key("cache").beginObject();
  w.key("hits").value(rec.cache_stats.hits);
  w.key("misses").value(rec.cache_stats.misses);
  w.key("evictions").value(rec.cache_stats.evictions);
  w.key("seeded_incumbents").value(rec.cache_stats.seeded_incumbents);
  w.key("insertions").value(rec.cache_stats.insertions);
  w.key("rejected").value(rec.cache_stats.rejected);
  w.endObject();
  w.key("fair_deadline").beginObject();
  w.key("deadline_seconds").value(rec.deadline_seconds);
  w.key("dispatched").value(rec.deadline_dispatched);
  w.key("solved").value(rec.deadline_solved);
  w.key("batch_size").value(rec.batch_size);
  w.endObject();
  w.endObject();
  if (path) {
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("wrote %s\n", path);
  } else {
    std::printf("%s\n", w.str().c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::printf("BATCH CACHE: repeated-problem batches through the result cache\n\n");

  // The device must outlive the problems (they hold a pointer to it).
  static const device::Device dev =
      device::columnarFromPattern("gen", "CCBCCDCCCCBCCCBCCDCC", 8);
  const std::vector<model::FloorplanProblem> distinct = distinctInstances(dev, 4);
  if (distinct.size() < 2) {
    std::fprintf(stderr, "generator produced %zu < 2 instances; aborting\n", distinct.size());
    return 1;
  }

  // Interleave three copies of each instance: duplicates race their
  // originals in the cold run and must all hit in the warm run.
  std::vector<const model::FloorplanProblem*> ptrs;
  for (int copy = 0; copy < 3; ++copy)
    for (const model::FloorplanProblem& p : distinct) ptrs.push_back(&p);

  Record rec;
  rec.name = "duplicated-batch";
  rec.batch_size = static_cast<int>(ptrs.size());
  rec.distinct = static_cast<int>(distinct.size());
  rec.duplicate_fraction =
      1.0 - static_cast<double>(rec.distinct) / static_cast<double>(rec.batch_size);

  driver::SolveRequest req;
  req.backend = driver::Backend::kSearch;

  const driver::Driver uncached(driver::DriverOptions{0});
  rec.nocache = runBatch(uncached, ptrs, req, nullptr, nullptr);
  std::printf("no-cache: %6.2fs  solved=%d/%d\n", rec.nocache.seconds, rec.nocache.solved,
              rec.batch_size);

  const driver::Driver drv;  // default cache
  std::vector<driver::SolveResponse> cold_responses;
  rec.cold = runBatch(drv, ptrs, req, nullptr, &cold_responses);
  std::printf("cold    : %6.2fs  solved=%d/%d  mid-batch hits=%d\n", rec.cold.seconds,
              rec.cold.solved, rec.batch_size, rec.cold.cache_hits);

  rec.warm = runBatch(drv, ptrs, req, &cold_responses, nullptr);
  rec.warm_ratio = rec.cold.seconds > 0 ? rec.warm.seconds / rec.cold.seconds : 0.0;
  rec.cache_stats = drv.cacheStats();
  std::printf("warm    : %6.2fs  solved=%d/%d  hits=%d  ratio=%.3fx\n", rec.warm.seconds,
              rec.warm.solved, rec.batch_size, rec.warm.cache_hits, rec.warm_ratio);

  // Fair budget slices under pressure: a deadline half the no-cache wall
  // time used to hand the whole budget to the first dispatches; fair
  // slicing should still dispatch the entire queue (informational).
  rec.deadline_seconds = std::max(0.5, 0.5 * rec.nocache.seconds);
  {
    const driver::Driver bounded(driver::DriverOptions{0});
    Stopwatch watch;
    const std::vector<driver::SolveResponse> res =
        bounded.solveBatch(ptrs, req, 2, nullptr, rec.deadline_seconds);
    for (const driver::SolveResponse& r : res) {
      rec.deadline_dispatched += r.detail.rfind("batch:", 0) != 0 ? 1 : 0;
      rec.deadline_solved += r.hasSolution() ? 1 : 0;
    }
    std::printf("fair-deadline(%.2fs): dispatched=%d/%d solved=%d (%.2fs wall)\n\n",
                rec.deadline_seconds, rec.deadline_dispatched, rec.batch_size,
                rec.deadline_solved, watch.seconds());
  }

  writeJson(rec, smoke ? "BENCH_batch_cache.smoke.json" : "BENCH_batch_cache.json");

  // CI gates (both modes): a cache-hit rerun may never be slower than the
  // cold run, every rerun answer must be a hit with an unchanged status,
  // and no served plan may fail the checker. The full acceptance bar —
  // warm <= 0.6x cold — is enforced as well: hits skip the engines
  // entirely, so anything above that signals a lookup-path regression.
  bool ok = true;
  if (rec.warm.cache_hits != rec.batch_size) {
    std::fprintf(stderr, "FAIL: warm rerun had %d/%d cache hits\n", rec.warm.cache_hits,
                 rec.batch_size);
    ok = false;
  }
  if (rec.warm.checker_rejects > 0 || rec.cold.checker_rejects > 0) {
    std::fprintf(stderr, "FAIL: %d cached plans failed model::check\n",
                 rec.warm.checker_rejects + rec.cold.checker_rejects);
    ok = false;
  }
  if (rec.warm.status_mismatches > 0) {
    std::fprintf(stderr, "FAIL: %d warm statuses differ from the cold run\n",
                 rec.warm.status_mismatches);
    ok = false;
  }
  if (rec.warm.seconds > 0.6 * rec.cold.seconds) {
    std::fprintf(stderr, "FAIL: warm rerun %.3fs > 0.6x cold %.3fs\n", rec.warm.seconds,
                 rec.cold.seconds);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("OK: warm/cold=%.3fx (gate <= 0.6x), %d/%d hits, 0 checker rejects\n",
              rec.warm_ratio, rec.warm.cache_hits, rec.batch_size);
  return 0;
}
