// Regenerates Figure 5: the SDR3 floorplan with 9 free-compatible areas.
// Prints the ASCII rendering and writes fig5_sdr3.svg next to the binary.
#include <cstdio>
#include <fstream>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr3 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr3, 3);

  search::SearchOptions opt;
  opt.num_threads = 8;
  opt.time_limit_seconds = 300;  // the paper let its solver run 6 hours here
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr3);
  if (!res.hasSolution()) {
    std::printf("FIG 5: no solution (%s)\n", search::toString(res.status));
    return 1;
  }

  std::printf("FIG 5: SDR3 floorplan (%d free-compatible areas, paper: 9)\n",
              res.plan.placedFcCount());
  std::printf("status=%s wasted_frames=%ld wire_length=%.1f\n\n",
              search::toString(res.status), res.costs.wasted_frames, res.costs.wire_length);
  std::printf("%s", render::ascii(sdr3, res.plan).c_str());

  std::ofstream svg("fig5_sdr3.svg");
  svg << render::svg(sdr3, res.plan);
  std::printf("\nSVG written to fig5_sdr3.svg\n");
  const std::string err = model::check(sdr3, res.plan);
  std::printf("checker: %s\n", err.empty() ? "OK" : err.c_str());
  return res.plan.placedFcCount() == 9 && err.empty() ? 0 : 1;
}
