// Driver orchestration bench: portfolio mode on the paper's SDR2/SDR3
// relocation workloads and batch-mode throughput scaling.
//
// Expected shape:
//  * portfolio returns the exact optimum (the search engine proves it and
//    cancels the rest) and is never slower than the slowest single backend
//    run with the same deadline;
//  * batch throughput scales from 1 to 4 pool threads on a bag of generated
//    instances.
#include <cstdio>
#include <vector>

#include "device/builders.hpp"
#include "driver/driver.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

constexpr double kDeadline = 30.0;  // per solve, every backend

void runInstance(const char* name, const model::FloorplanProblem& problem) {
  const driver::Driver drv;
  driver::SolveRequest req;
  req.num_threads = 4;
  req.deadline_seconds = kDeadline;
  // Let the annealer exploit its whole budget, as a long-running portfolio
  // member would: the portfolio must still return as soon as the exact
  // engine's proof lands, instead of waiting out the slowest member.
  req.annealer.iterations = 2000000000L;

  std::printf("%-6s %-10s %14s %12s %12s %9s\n", "inst", "mode", "wasted frames",
              "wire length", "status", "time[s]");

  long optimum = -1;
  double slowest_single = 0.0;
  for (const driver::Backend b : driver::allBackends()) {
    req.backend = b;
    const driver::SolveResponse res = drv.solve(problem, req);
    slowest_single = std::max(slowest_single, res.seconds);
    if (res.status == driver::SolveStatus::kOptimal) optimum = res.costs.wasted_frames;
    std::printf("%-6s %-10s %14ld %12.1f %12s %9.2f\n", name, driver::toString(b),
                res.hasSolution() ? res.costs.wasted_frames : -1,
                res.hasSolution() ? res.costs.wire_length : -1.0,
                driver::toString(res.status), res.seconds);
  }

  const driver::SolveResponse port = drv.solvePortfolio(problem, req);
  std::printf("%-6s %-10s %14ld %12.1f %12s %9.2f\n", name, "portfolio",
              port.hasSolution() ? port.costs.wasted_frames : -1,
              port.hasSolution() ? port.costs.wire_length : -1.0,
              driver::toString(port.status), port.seconds);
  const bool optimum_matched =
      port.status == driver::SolveStatus::kOptimal &&
      (optimum < 0 || port.costs.wasted_frames == optimum);
  std::printf("%-6s -> portfolio %s the exact optimum, %.2fs vs slowest single %.2fs (%s)\n\n",
              name, optimum_matched ? "matches" : "MISSES", port.seconds, slowest_single,
              port.seconds <= slowest_single ? "not slower" : "SLOWER");
}

void runBatchScaling() {
  // Calibrated so solves are seconds each with no single instance dominating
  // the bag (sum/max ≈ 4 across these seeds): heavy enough for the pool to
  // matter, balanced enough for the speedup to be visible.
  const device::Device dev = device::columnarFromPattern("bat", "CCBCCDCCCCBCCCBCCDCC", 8);
  model::GeneratorOptions gopt;
  gopt.num_regions = 6;
  gopt.max_region_width = 5;
  gopt.max_region_height = 4;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 16 && seed < 100; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  std::vector<const model::FloorplanProblem*> ptrs;
  for (const auto& p : problems) ptrs.push_back(&p);

  // Cache off: the later thread counts re-solve the same instances, and
  // with the result cache they would measure lookups, not pool scaling.
  const driver::Driver drv(driver::DriverOptions{0});
  driver::SolveRequest req;
  req.backend = driver::Backend::kSearch;
  req.deadline_seconds = 10.0;  // bound the hardest instances in the bag

  std::printf("BATCH: %zu generated instances, exact search per instance\n", ptrs.size());
  std::printf("%-8s %10s %14s %9s\n", "threads", "time[s]", "solved/total", "speedup");
  double t1 = 0.0;
  for (const int threads : {1, 2, 4}) {
    Stopwatch watch;
    const std::vector<driver::SolveResponse> res = drv.solveBatch(ptrs, req, threads);
    const double t = watch.seconds();
    if (threads == 1) t1 = t;
    int solved = 0;
    for (const driver::SolveResponse& r : res) solved += r.hasSolution() ? 1 : 0;
    std::printf("%-8d %10.2f %10d/%zu %9.2fx\n", threads, t, solved, ptrs.size(),
                t > 0 ? t1 / t : 0.0);
  }
}

}  // namespace

int main() {
  std::printf("DRIVER PORTFOLIO: SDR2/SDR3 (Sec. VI relocation workloads)\n");
  std::printf("deadline %.0fs per solve; portfolio cancels on the first proof\n\n", kDeadline);

  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);
  runInstance("SDR2", sdr2);

  model::FloorplanProblem sdr3 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr3, 3);
  runInstance("SDR3", sdr3);

  runBatchScaling();
  return 0;
}
