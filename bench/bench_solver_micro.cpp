// Ablation C: microbenchmarks of the solver substrate (google-benchmark):
// simplex scaling on random dense LPs, branch-and-bound on knapsacks, and
// the exact-search candidate machinery.
#include <benchmark/benchmark.h>

#include "device/builders.hpp"
#include "lp/simplex.hpp"
#include "milp/bb.hpp"
#include "model/problem.hpp"
#include "partition/columnar.hpp"
#include "search/candidates.hpp"
#include "search/solver.hpp"
#include "support/rng.hpp"

namespace {

using namespace rfp;

lp::Model randomLp(int n, int m, std::uint64_t seed) {
  Rng rng(seed);
  lp::Model model;
  std::vector<lp::Var> vars;
  for (int j = 0; j < n; ++j)
    vars.push_back(model.addContinuous(0, 1 + static_cast<double>(rng.nextBelow(9)), "v"));
  for (int i = 0; i < m; ++i) {
    lp::LinExpr e;
    for (int j = 0; j < n; ++j)
      e += static_cast<double>(rng.nextBelow(5)) * vars[static_cast<std::size_t>(j)];
    model.addConstr(e, lp::Sense::kLessEqual, 5.0 + static_cast<double>(rng.nextBelow(40)));
  }
  lp::LinExpr obj;
  for (int j = 0; j < n; ++j)
    obj += (1.0 + static_cast<double>(rng.nextBelow(7))) * vars[static_cast<std::size_t>(j)];
  model.setObjective(obj, lp::ObjSense::kMaximize);
  return model;
}

void BM_SimplexRandomDense(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Model model = randomLp(n, n, 7);
  lp::SimplexSolver solver;
  for (auto _ : state) {
    const lp::LpResult r = solver.solve(model);
    benchmark::DoNotOptimize(r.objective);
  }
  state.SetLabel("n=m=" + std::to_string(n));
}
BENCHMARK(BM_SimplexRandomDense)->Arg(10)->Arg(30)->Arg(60)->Arg(120);

void BM_MilpKnapsack(benchmark::State& state) {
  const int items = static_cast<int>(state.range(0));
  Rng rng(11);
  lp::Model model;
  lp::LinExpr weight, value;
  for (int i = 0; i < items; ++i) {
    const lp::Var v = model.addBinary("v");
    weight += (1.0 + static_cast<double>(rng.nextBelow(9))) * v;
    value += (1.0 + static_cast<double>(rng.nextBelow(17))) * v;
  }
  model.addConstr(weight, lp::Sense::kLessEqual, 2.0 * items);
  model.setObjective(value, lp::ObjSense::kMaximize);
  milp::MilpSolver solver;
  for (auto _ : state) {
    const milp::MipResult r = solver.solve(model);
    benchmark::DoNotOptimize(r.objective);
  }
}
BENCHMARK(BM_MilpKnapsack)->Arg(8)->Arg(12)->Arg(16);

void BM_ColumnarPartitionFx70t(benchmark::State& state) {
  const device::Device dev = device::virtex5FX70T();
  for (auto _ : state) {
    const auto part = partition::columnarPartition(dev);
    benchmark::DoNotOptimize(part->portions.size());
  }
}
BENCHMARK(BM_ColumnarPartitionFx70t);

void BM_CandidateEnumerationSdr(benchmark::State& state) {
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
  const int region = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const search::RegionCandidates c = search::enumerateCandidates(sdr, region);
    benchmark::DoNotOptimize(c.shapes.size());
  }
  state.SetLabel(sdr.region(region).name);
}
BENCHMARK(BM_CandidateEnumerationSdr)->Arg(0)->Arg(4);

void BM_SdrExactSolve(benchmark::State& state) {
  const device::Device dev = device::virtex5FX70T();
  search::SearchOptions opt;
  opt.num_threads = static_cast<int>(state.range(0));
  const search::ColumnarSearchSolver solver(opt);
  for (auto _ : state) {
    const model::FloorplanProblem sdr = model::makeSdrProblem(dev);
    const search::SearchResult r = solver.solve(sdr);
    benchmark::DoNotOptimize(r.costs.wasted_frames);
  }
}
BENCHMARK(BM_SdrExactSolve)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
