// Regenerates the Sec. VI feasibility analysis: for each SDR region, is at
// least one free-compatible area placeable (with all five regions placed)?
//
// Paper result: no solution exists for the matched filter or the video
// decoder; carrier recovery, demodulator and signal decoder are relocatable.
#include <cstdio>

#include "device/builders.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  search::SearchOptions opt;
  opt.num_threads = 8;
  const search::ColumnarSearchSolver solver(opt);

  std::printf("FEASIBILITY ANALYSIS (Sec. VI): one free-compatible area per region\n\n");
  std::printf("%-18s %-16s %-16s %9s\n", "Region", "paper", "measured", "time[s]");

  const bool paper_expected[5] = {false, true, true, true, false};
  bool all_match = true;
  Stopwatch total;
  for (int n = 0; n < sdr.numRegions(); ++n) {
    Stopwatch watch;
    model::FloorplanProblem probe = model::makeSdrProblem(dev);
    probe.addRelocation(model::RelocationRequest{n, 1, /*hard=*/true, 1.0});
    search::SearchOptions popt = opt;
    popt.feasibility_only = true;
    const search::SearchResult res = search::ColumnarSearchSolver(popt).solve(probe);
    const bool relocatable = res.hasSolution();
    all_match = all_match && (relocatable == paper_expected[n]);
    std::printf("%-18s %-16s %-16s %9.3f\n", sdr.region(n).name.c_str(),
                paper_expected[n] ? "relocatable" : "not relocatable",
                relocatable ? "relocatable" : "not relocatable", watch.seconds());
  }
  std::printf("\ntotal %.3fs — paper pattern %s\n", total.seconds(),
              all_match ? "REPRODUCED" : "MISMATCH");
  return all_match ? 0 : 1;
}
