// In-solve parallel branch & bound bench: does one solve scale across
// work-stealing workers without changing the answer?
//
// Two workloads, each run at 1 thread and at 8 threads:
//
//  * search — the exact columnar search on the paper's SDR2 instance with
//    2 relocation requests per region (the Fig. 4 configuration). The
//    8-thread run fans the root candidates out over work-stealing workers;
//    status and final cost (wasted frames, wire length) must be identical
//    to the sequential run — thread count may change which optimal plan is
//    returned, never how good it is.
//  * milp — the from-scratch MILP branch & bound over a fixed set of
//    random binary programs (the parallel engine with per-worker dual
//    reoptimizers and stolen-basis adoption). Statuses and objectives must
//    match the sequential solver on every instance.
//
// The headline figure is node throughput (B&B nodes per second) at 8
// workers vs 1. The >= 3x acceptance bar only means anything with >= 8
// hardware cores; on fewer cores (CI containers are often 1-2 cores) the
// ratio is recorded as informational and the gate falls back to the
// correctness properties, which hold at any core count:
//
//  * identical status and cost/objective across thread counts (gated),
//  * per-worker telemetry consistent (worker nodes sum to the total, steal
//    counts aggregate; gated),
//  * every plan passes model::check (gated).
//
// Usage: bench_parallel_bb [--smoke]
//   --smoke  same workloads with a reduced MILP trial count, gates
//            enforced, JSON to BENCH_parallel_bb.smoke.json (CI artifact;
//            the tracked full-run snapshot at the repo root is untouched).
//   full     writes BENCH_parallel_bb.json into the current directory.
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_meta.hpp"
#include "device/builders.hpp"
#include "io/json.hpp"
#include "milp/bb.hpp"
#include "model/floorplan.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/rng.hpp"
#include "support/telemetry/metrics.hpp"
#include "support/telemetry/trace.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

struct RunFigures {
  int threads = 1;
  std::string status;
  double seconds = 0.0;
  long nodes = 0;
  long steals = 0;
  double nodes_per_sec = 0.0;
  long cost_primary = 0;     // search: wasted frames; milp: 0
  double cost_secondary = 0; // search: wire length; milp: summed objective
  bool telemetry_ok = true;  // worker stats sum to the totals
  bool checker_ok = true;    // plans pass model::check (search only)
};

RunFigures runSearch(const model::FloorplanProblem& problem, int threads,
                     const telemetry::Context* ctx = nullptr) {
  search::SearchOptions opt;
  opt.num_threads = threads;
  opt.telemetry = ctx;
  Stopwatch watch;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(problem);
  RunFigures f;
  f.threads = threads;
  f.status = search::toString(res.status);
  f.seconds = watch.seconds();
  f.nodes = res.nodes;
  f.steals = res.steals;
  f.nodes_per_sec = f.seconds > 0 ? static_cast<double>(res.nodes) / f.seconds : 0.0;
  if (res.hasSolution()) {
    f.cost_primary = res.costs.wasted_frames;
    f.cost_secondary = res.costs.wire_length;
    f.checker_ok = model::check(problem, res.plan).empty();
  }
  long wnodes = 0, wsteals = 0;
  for (const search::SearchWorkerStats& w : res.workers) {
    wnodes += w.nodes;
    wsteals += w.steals;
  }
  f.telemetry_ok = static_cast<int>(res.workers.size()) == threads && wnodes == res.nodes &&
                   wsteals == res.steals;
  return f;
}

/// A random knapsack-style binary program. Capacities sit at half the row
/// weight so the LP relaxation is fractional and branch & bound actually
/// builds a tree (a loose capacity would solve at the root).
lp::Model randomBinaryProgram(Rng& rng) {
  lp::Model m;
  const int n = 10 + static_cast<int>(rng.nextBelow(9));
  for (int j = 0; j < n; ++j) m.addBinary("b" + std::to_string(j));
  const int rows = 2 + static_cast<int>(rng.nextBelow(4));
  for (int r = 0; r < rows; ++r) {
    lp::LinExpr e;
    long weight = 0;
    for (int j = 0; j < n; ++j)
      if (rng.nextBool(0.7)) {
        const long c = rng.nextInt(3, 9);
        weight += c;
        e += static_cast<double>(c) * lp::Var{j};
      }
    m.addConstr(e, lp::Sense::kLessEqual, static_cast<double>(weight / 2));
  }
  lp::LinExpr obj;
  for (int j = 0; j < n; ++j) obj += static_cast<double>(rng.nextInt(1, 12)) * lp::Var{j};
  m.setObjective(obj, lp::ObjSense::kMaximize);
  return m;
}

RunFigures runMilp(const std::vector<lp::Model>& models, int threads,
                   std::vector<std::string>* statuses, std::vector<double>* objectives) {
  RunFigures f;
  f.threads = threads;
  f.status = "optimal";
  Stopwatch watch;
  for (const lp::Model& m : models) {
    milp::MilpSolver::Options opt;
    opt.threads = threads;
    const milp::MipResult res = milp::MilpSolver(opt).solve(m);
    f.nodes += res.nodes;
    f.steals += res.steals;
    if (statuses) statuses->push_back(milp::toString(res.status));
    if (objectives) objectives->push_back(res.status == milp::MipStatus::kOptimal ? res.objective : 0.0);
    if (res.status == milp::MipStatus::kOptimal) f.cost_secondary += res.objective;
    long wnodes = 0, wsteals = 0;
    for (const milp::MipWorkerStats& w : res.workers) {
      wnodes += w.nodes;
      wsteals += w.steals;
    }
    if (threads > 1 &&
        (static_cast<int>(res.workers.size()) != threads || wnodes != res.nodes ||
         wsteals != res.steals))
      f.telemetry_ok = false;
  }
  f.seconds = watch.seconds();
  f.nodes_per_sec = f.seconds > 0 ? static_cast<double>(f.nodes) / f.seconds : 0.0;
  return f;
}

void writeFigures(io::JsonWriter& w, const char* key, const RunFigures& f) {
  w.key(key).beginObject();
  w.key("threads").value(f.threads);
  w.key("status").value(f.status);
  w.key("seconds").value(f.seconds);
  w.key("nodes").value(f.nodes);
  w.key("steals").value(f.steals);
  w.key("nodes_per_sec").value(f.nodes_per_sec);
  w.key("cost_primary").value(f.cost_primary);
  w.key("cost_secondary").value(f.cost_secondary);
  w.key("telemetry_ok").value(f.telemetry_ok);
  w.key("checker_ok").value(f.checker_ok);
  w.endObject();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  const unsigned cores = std::thread::hardware_concurrency();
  std::printf("PARALLEL B&B: one solve across work-stealing workers (%u cores)\n\n", cores);

  // SDR2 with the Fig. 4 relocation configuration; the device must outlive
  // the problem (it holds a pointer).
  static const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);

  const RunFigures s1 = runSearch(sdr2, 1);
  std::printf("search 1t: %-8s %8.2fs  nodes=%-9ld %.0f nodes/s\n", s1.status.c_str(),
              s1.seconds, s1.nodes, s1.nodes_per_sec);
  const RunFigures s8 = runSearch(sdr2, 8);
  std::printf("search 8t: %-8s %8.2fs  nodes=%-9ld %.0f nodes/s  steals=%ld\n",
              s8.status.c_str(), s8.seconds, s8.nodes, s8.nodes_per_sec, s8.steals);
  const double search_speedup =
      s1.nodes_per_sec > 0 ? s8.nodes_per_sec / s1.nodes_per_sec : 0.0;

  // Same solve with the tracing/metrics subsystem attached. The untraced
  // figures above ARE the disabled-path cost (every instrumentation site
  // compiles to one branch without a context); this run prices the enabled
  // path so the snapshot records what turning tracing on actually costs.
  telemetry::MetricsRegistry trace_reg;
  telemetry::TraceRecorder trace_rec;
  telemetry::Context trace_ctx;
  trace_ctx.metrics = &trace_reg;
  trace_ctx.trace = &trace_rec;
  const RunFigures s8t = runSearch(sdr2, 8, &trace_ctx);
  const double traced_slowdown =
      s8t.nodes_per_sec > 0 ? s8.nodes_per_sec / s8t.nodes_per_sec : 0.0;
  std::printf("search 8t+trace: %-8s %8.2fs  nodes=%-9ld %.0f nodes/s  "
              "events=%ld slowdown=%.2fx\n",
              s8t.status.c_str(), s8t.seconds, s8t.nodes, s8t.nodes_per_sec,
              trace_rec.retained(), traced_slowdown);

  // MILP engine over a fixed random instance set (same models both runs).
  Rng rng(20240841);
  std::vector<lp::Model> models;
  const int trials = smoke ? 12 : 40;
  for (int i = 0; i < trials; ++i) models.push_back(randomBinaryProgram(rng));
  std::vector<std::string> st1, st8;
  std::vector<double> obj1, obj8;
  const RunFigures m1 = runMilp(models, 1, &st1, &obj1);
  std::printf("milp   1t: %d instances %6.2fs  nodes=%-7ld %.0f nodes/s\n", trials, m1.seconds,
              m1.nodes, m1.nodes_per_sec);
  const RunFigures m8 = runMilp(models, 8, &st8, &obj8);
  std::printf("milp   8t: %d instances %6.2fs  nodes=%-7ld %.0f nodes/s  steals=%ld\n\n",
              trials, m8.seconds, m8.nodes, m8.nodes_per_sec, m8.steals);
  const double milp_speedup = m1.nodes_per_sec > 0 ? m8.nodes_per_sec / m1.nodes_per_sec : 0.0;

  io::JsonWriter w;
  w.beginObject();
  bench::writeBenchMeta(w);
  w.key("bench").value("parallel_bb");
  w.key("hardware_cores").value(static_cast<long>(cores));
  writeFigures(w, "search_1t", s1);
  writeFigures(w, "search_8t", s8);
  w.key("search_node_throughput_speedup").value(search_speedup);
  writeFigures(w, "search_8t_traced", s8t);
  w.key("trace_events_retained").value(trace_rec.retained());
  w.key("trace_events_dropped").value(trace_rec.dropped());
  w.key("traced_slowdown").value(traced_slowdown);
  writeFigures(w, "milp_1t", m1);
  writeFigures(w, "milp_8t", m8);
  w.key("milp_node_throughput_speedup").value(milp_speedup);
  // The >= 3x throughput bar needs real cores; record whether this run
  // could even express it so snapshot readers are not misled.
  w.key("throughput_gate_active").value(cores >= 8);
  w.endObject();
  const char* path = smoke ? "BENCH_parallel_bb.smoke.json" : "BENCH_parallel_bb.json";
  {
    std::ofstream out(path);
    out << w.str() << "\n";
  }
  std::printf("wrote %s\n", path);

  // CI gates: correctness properties hold at any core count.
  bool ok = true;
  if (s1.status != s8.status || s1.cost_primary != s8.cost_primary ||
      std::abs(s1.cost_secondary - s8.cost_secondary) > 1e-6) {
    std::fprintf(stderr, "FAIL: search 8t answer differs from 1t (%s/%ld/%.1f vs %s/%ld/%.1f)\n",
                 s8.status.c_str(), s8.cost_primary, s8.cost_secondary, s1.status.c_str(),
                 s1.cost_primary, s1.cost_secondary);
    ok = false;
  }
  for (std::size_t i = 0; i < st1.size(); ++i) {
    if (st1[i] != st8[i] || std::abs(obj1[i] - obj8[i]) > 1e-6) {
      std::fprintf(stderr, "FAIL: milp instance %zu: 8t %s/%.6f vs 1t %s/%.6f\n", i,
                   st8[i].c_str(), obj8[i], st1[i].c_str(), obj1[i]);
      ok = false;
    }
  }
  if (!s1.checker_ok || !s8.checker_ok) {
    std::fprintf(stderr, "FAIL: a search plan failed model::check\n");
    ok = false;
  }
  // Observability must never change answers: the traced run solves the same
  // problem to the same cost (thread scheduling may pick a different tied
  // plan, so only status + costs are compared, like the 1t/8t gate above).
  if (s8t.status != s8.status || s8t.cost_primary != s8.cost_primary ||
      std::abs(s8t.cost_secondary - s8.cost_secondary) > 1e-6) {
    std::fprintf(stderr, "FAIL: traced search answer differs (%s/%ld/%.1f vs %s/%ld/%.1f)\n",
                 s8t.status.c_str(), s8t.cost_primary, s8t.cost_secondary, s8.status.c_str(),
                 s8.cost_primary, s8.cost_secondary);
    ok = false;
  }
  if (!s8.telemetry_ok || !m8.telemetry_ok) {
    std::fprintf(stderr, "FAIL: per-worker telemetry does not sum to the totals\n");
    ok = false;
  }
  // Throughput gate only where 8 workers can actually run in parallel.
  if (cores >= 8 && search_speedup < 3.0) {
    std::fprintf(stderr, "FAIL: search node throughput speedup %.2fx < 3x on %u cores\n",
                 search_speedup, cores);
    ok = false;
  }
  if (!ok) return 1;
  std::printf("OK: answers identical across thread counts; search speedup %.2fx, milp %.2fx%s\n",
              search_speedup, milp_speedup,
              cores >= 8 ? " (gate >= 3x)" : " (informational: < 8 cores)");
  return 0;
}
