// Regenerates Table II: comparison of floorplan solutions.
//
// Paper values (wasted frames / free-compatible areas):
//   [8]  SDR   466 / 0      (Vipin–Fahmy heuristic, relocation-unaware)
//   [10] SDR   306 / 0      (exact MILP, no relocation constraints)
//   PA   SDR2  306 / 6      (proposed approach, 2 FC per relocatable region)
//   PA   SDR3  346 / 9      (proposed approach, 3 FC per relocatable region)
//
// Absolute numbers depend on the authors' exact device data; the shape to
// reproduce (DESIGN.md §2) is: [8] > optimum; SDR2 == the no-relocation
// optimum; SDR3 >= SDR2 with all 9 areas placed.
#include <cstdio>

#include "baseline/vipin_fahmy.hpp"
#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  std::printf("TABLE II: Comparison of different floorplan solutions\n\n");
  std::printf("%-10s %-6s %-22s %-14s %-12s %9s\n", "Algorithm", "Design", "Free-compat. areas",
              "Wasted frames", "Wire length", "time[s]");

  search::SearchOptions opt;
  opt.num_threads = 8;
  opt.time_limit_seconds = 120;
  const search::ColumnarSearchSolver solver(opt);

  // [8]: relocation-unaware reconstruction.
  long vf_waste = -1;
  {
    Stopwatch watch;
    const auto vf = baseline::vipinFahmyFloorplan(sdr);
    if (vf) {
      const model::FloorplanCosts costs = model::evaluate(sdr, *vf);
      vf_waste = costs.wasted_frames;
      std::printf("%-10s %-6s %-22d %-14ld %-12.1f %9.3f\n", "[8]", "SDR", 0,
                  costs.wasted_frames, costs.wire_length, watch.seconds());
    }
  }

  const auto run = [&](const char* algo, const char* design, int fc) {
    Stopwatch watch;
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    if (fc > 0) model::addSdrRelocations(p, fc);
    const search::SearchResult res = solver.solve(p);
    if (res.hasSolution())
      std::printf("%-10s %-6s %-22d %-14ld %-12.1f %9.3f\n", algo, design,
                  res.plan.placedFcCount(), res.costs.wasted_frames, res.costs.wire_length,
                  watch.seconds());
    else
      std::printf("%-10s %-6s (no solution: %s)\n", algo, design, search::toString(res.status));
    return res;
  };

  const search::SearchResult base = run("[10]", "SDR", 0);
  const search::SearchResult sdr2 = run("PA", "SDR2", 2);
  const search::SearchResult sdr3 = run("PA", "SDR3", 3);

  std::printf("\npaper: [8]=466/0  [10]=306/0  PA SDR2=306/6  PA SDR3=346/9\n");
  const bool shape =
      vf_waste > base.costs.wasted_frames &&
      sdr2.hasSolution() && sdr2.costs.wasted_frames == base.costs.wasted_frames &&
      sdr2.plan.placedFcCount() == 6 && sdr3.hasSolution() &&
      sdr3.costs.wasted_frames >= sdr2.costs.wasted_frames && sdr3.plan.placedFcCount() == 9;
  std::printf("shape ([8] > optimum; SDR2 == optimum with 6 areas; SDR3 >= SDR2 with 9): %s\n",
              shape ? "REPRODUCED" : "MISMATCH");
  return shape ? 0 : 1;
}
