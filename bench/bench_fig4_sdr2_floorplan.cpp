// Regenerates Figure 4: the SDR2 floorplan with 6 free-compatible areas.
// Prints the ASCII rendering and writes fig4_sdr2.svg next to the binary.
#include <cstdio>
#include <fstream>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "render/render.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
  model::addSdrRelocations(sdr2, 2);

  search::SearchOptions opt;
  opt.num_threads = 8;
  opt.time_limit_seconds = 120;
  const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(sdr2);
  if (!res.hasSolution()) {
    std::printf("FIG 4: no solution (%s)\n", search::toString(res.status));
    return 1;
  }

  std::printf("FIG 4: SDR2 floorplan (%d free-compatible areas, paper: 6)\n",
              res.plan.placedFcCount());
  std::printf("status=%s wasted_frames=%ld wire_length=%.1f\n\n",
              search::toString(res.status), res.costs.wasted_frames, res.costs.wire_length);
  std::printf("%s", render::ascii(sdr2, res.plan).c_str());

  std::ofstream svg("fig4_sdr2.svg");
  svg << render::svg(sdr2, res.plan);
  std::printf("\nSVG written to fig4_sdr2.svg\n");
  const std::string err = model::check(sdr2, res.plan);
  std::printf("checker: %s\n", err.empty() ? "OK" : err.c_str());
  return res.plan.placedFcCount() == 6 && err.empty() ? 0 : 1;
}
