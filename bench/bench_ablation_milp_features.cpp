// ABLATION F: what each branch-and-bound feature buys on the paper's model
// class (DESIGN.md substitution 1: the from-scratch MILP solver stands in
// for the commercial branch-and-cut solver of [10]).
//
// Runs the O formulation, stage 1 (minimize wasted frames), on a small
// relocation instance with each solver feature toggled, reporting nodes,
// LP iterations and wall time.
#include <cstdio>

#include "device/builders.hpp"
#include "fp/formulation.hpp"
#include "milp/bb.hpp"
#include "model/problem.hpp"
#include "partition/columnar.hpp"
#include "support/timer.hpp"

int main() {
  using namespace rfp;

  const device::Device dev = device::columnarFromPattern("t", "CCBCCDCC", 5);
  model::FloorplanProblem p(&dev);
  p.addRegion(model::RegionSpec{"a", {3, 0, 1}});
  p.addRegion(model::RegionSpec{"b", {2, 1, 0}});
  p.addNet(model::Net{{0, 1}, 2.0, "n"});
  p.addRelocation(model::RelocationRequest{1, 1, true, 1.0});

  const auto part = partition::columnarPartition(dev);
  fp::FormulationOptions fopt;
  fopt.objective = fp::ObjectiveKind::kWastedFrames;
  const fp::MilpFormulation formulation(p, *part, fopt);

  std::printf("ABLATION F: MILP solver features on the O formulation (stage 1)\n");
  std::printf("model: %d vars, %d constraints (8x5 device, 2 regions + 1 FC area)\n\n",
              formulation.model().numVars(), formulation.model().numConstrs());
  std::printf("%-28s %10s %8s %12s %9s\n", "configuration", "status", "nodes",
              "lp-iters", "time[s]");

  struct Config {
    const char* name;
    bool presolve, cuts, pseudo;
  };
  const Config configs[] = {
      {"baseline (none)", false, false, false},
      {"+presolve", true, false, false},
      {"+cover cuts", false, true, false},
      {"+pseudo-cost branching", false, false, true},
      {"all features", true, true, true},
  };
  for (const Config& cfg : configs) {
    milp::MilpSolver::Options opt;
    opt.enable_presolve = cfg.presolve;
    opt.enable_cover_cuts = cfg.cuts;
    opt.pseudo_cost_branching = cfg.pseudo;
    opt.time_limit_seconds = 120;
    Stopwatch watch;
    const milp::MipResult res = milp::MilpSolver(opt).solve(formulation.model());
    std::printf("%-28s %10s %8ld %12ld %9.2f\n", cfg.name, milp::toString(res.status),
                res.nodes, res.lp_iterations, watch.seconds());
  }

  std::printf(
      "\nexpected shape: pseudo-cost branching is the dominant lever on this\n"
      "model class (big-M rows make fractionality a poor branching signal).\n"
      "Cover cuts are inert here — the O formulation has no pure-binary\n"
      "knapsack rows — but fire on the knapsack instances of\n"
      "bench_solver_micro. Presolve's value is infeasibility detection and\n"
      "per-branch tightening rather than root speedup on feasible instances.\n");
  return 0;
}
