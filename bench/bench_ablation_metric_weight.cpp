// Ablation A: relocation as a metrics (Sec. V) — sweep the q4 weight and
// report how many requested free-compatible areas are identified vs the
// other cost terms (Eq. 13/14 trade-off).
#include <cstdio>

#include "device/builders.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();

  std::printf("ABLATION A: relocation-as-metrics weight sweep (Sec. V)\n");
  std::printf("3 soft FC areas requested per relocatable region (9 slots total)\n\n");
  std::printf("%6s %9s %14s %12s %10s %9s\n", "q4", "fc/9", "wasted frames", "wire length",
              "RLcost", "time[s]");

  for (const double q4 : {0.0, 0.05, 0.2, 1.0, 5.0}) {
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    model::addSdrRelocations(p, 3, /*hard=*/false, /*weight=*/1.0);
    p.setWeights(model::ObjectiveWeights{/*q1*/ 0.05, /*q2*/ 0.0, /*q3*/ 1.0, q4});
    p.setLexicographic(false);

    search::SearchOptions opt;
    opt.mode = search::ObjectiveMode::kWeighted;
    opt.num_threads = 8;
    opt.time_limit_seconds = 30;
    opt.waste_budget = 1500;  // search-size cap, far above any optimum here
    Stopwatch watch;
    const search::SearchResult res = search::ColumnarSearchSolver(opt).solve(p);
    if (!res.hasSolution()) {
      std::printf("%6.2f (no solution: %s)\n", q4, search::toString(res.status));
      continue;
    }
    std::printf("%6.2f %6d/9 %14ld %12.1f %10.2f %9.3f\n", q4, res.plan.placedFcCount(),
                res.costs.wasted_frames, res.costs.wire_length, res.costs.relocation,
                watch.seconds());
  }
  std::printf("\nexpected shape: at q4=0 regions optimize WL/waste alone and FC areas\n");
  std::printf("are placed only where they happen to fit; growing q4 shifts regions\n");
  std::printf("toward placements that enable all 9 areas, trading wire length.\n");
  return 0;
}
