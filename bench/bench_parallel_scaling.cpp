// Ablation D: parallel scaling of the exact search solver on SDR2/SDR3
// (google-benchmark over thread counts; root-level work decomposition).
#include <benchmark/benchmark.h>

#include "device/builders.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"

namespace {

using namespace rfp;

void runScaling(benchmark::State& state, int fc_per_region) {
  const device::Device dev = device::virtex5FX70T();
  search::SearchOptions opt;
  opt.num_threads = static_cast<int>(state.range(0));
  const search::ColumnarSearchSolver solver(opt);
  long waste = -1;
  for (auto _ : state) {
    model::FloorplanProblem p = model::makeSdrProblem(dev);
    if (fc_per_region > 0) model::addSdrRelocations(p, fc_per_region);
    const search::SearchResult r = solver.solve(p);
    waste = r.costs.wasted_frames;
    benchmark::DoNotOptimize(waste);
  }
  state.SetLabel("waste=" + std::to_string(waste) +
                 " threads=" + std::to_string(state.range(0)));
}

void BM_Sdr2Scaling(benchmark::State& state) { runScaling(state, 2); }
BENCHMARK(BM_Sdr2Scaling)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

void BM_Sdr3Scaling(benchmark::State& state) { runScaling(state, 3); }
BENCHMARK(BM_Sdr3Scaling)->Arg(1)->Arg(4)->Arg(16)
    ->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
