// Incumbent-exchange bench: does seeding the provers with an annealer
// incumbent actually pay, and is the staged portfolio safe?
//
// Two experiments per instance:
//
//  * cutoff — run the annealer briefly, publish its best floorplan into a
//    SharedIncumbent channel, then solve the same instance with the exact
//    search (single thread, deterministic exploration order) blind vs
//    seeded. The seeded run's cutoff starts at the annealer's cost instead
//    of +inf, so it must explore a subset of the blind run's nodes — the
//    node ratio and nodes/second quantify the pruning win. The MILP-O
//    floorplanner is measured the same way (informationally: its pseudo-cost
//    branching state diverges once pruning differs, so a strict subset is
//    not guaranteed there).
//
//  * staged — the full portfolio as the driver ships it (incumbent exchange
//    + staged deadlines) vs the blind flat race, recording final costs and
//    wall clock. The staged run must never return a worse floorplan.
//
// Usage: bench_portfolio_incumbent [--smoke]
//   --smoke  generated instances only (seconds, for CI) and no JSON file;
//            exits non-zero when the seeded exact search explores more
//            nodes than the blind race on any instance (a deterministic
//            subset property; staged-vs-flat quality is reported but only
//            warns, since both sides are wall-clock races).
//   full     adds the paper's SDR2 relocation workload and writes
//            BENCH_portfolio_incumbent.json into the current directory.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "baseline/annealer.hpp"
#include "device/builders.hpp"
#include "driver/driver.hpp"
#include "driver/incumbent.hpp"
#include "fp/milp_floorplanner.hpp"
#include "io/json.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

struct SolveFigures {
  long nodes = 0;
  double seconds = 0.0;
  std::string status;
  long adopted = 0;
  long external_prunes = 0;

  [[nodiscard]] double nodesPerSec() const { return seconds > 0 ? nodes / seconds : 0.0; }
};

struct PortfolioFigures {
  std::string status;
  std::string winner;
  long waste = -1;
  double wire_length = -1.0;
  double seconds = 0.0;
  double stage1_seconds = 0.0;
  long adoptions = 0;
  long cutoff_prunes = 0;
};

struct Record {
  std::string name;
  model::FloorplanCosts annealer_costs;
  double annealer_seconds = 0.0;
  SolveFigures search_blind, search_seeded;
  SolveFigures milp_blind, milp_seeded;
  bool milp_measured = false;
  PortfolioFigures flat, staged;
  bool staged_not_worse = false;

  [[nodiscard]] double searchNodeRatio() const {
    return search_blind.nodes > 0
               ? static_cast<double>(search_seeded.nodes) / static_cast<double>(search_blind.nodes)
               : 1.0;
  }
};

SolveFigures searchFigures(const search::SearchResult& res) {
  SolveFigures f;
  f.nodes = res.nodes;
  f.seconds = res.seconds;
  f.status = search::toString(res.status);
  f.adopted = res.adopted;
  f.external_prunes = res.external_prunes;
  return f;
}

/// The annealer incumbent every seeded run is given (fixed seed/iterations:
/// the comparison needs both runs to see the identical cutoff).
std::optional<baseline::AnnealResult> annealerIncumbent(const model::FloorplanProblem& problem,
                                                        long iterations) {
  baseline::AnnealerOptions opt;
  opt.seed = 7;
  opt.iterations = iterations;
  return baseline::annealFloorplan(problem, opt);
}

Record runInstance(const std::string& name, const model::FloorplanProblem& problem,
                   long annealer_iterations, bool measure_milp, double milp_budget,
                   double portfolio_deadline) {
  Record rec;
  rec.name = name;

  // ---- cutoff experiment: exact search, blind vs annealer-seeded ----------
  Stopwatch anneal_watch;
  const auto incumbent = annealerIncumbent(problem, annealer_iterations);
  rec.annealer_seconds = anneal_watch.seconds();
  if (!incumbent) {
    std::fprintf(stderr, "%s: annealer found no incumbent; skipping\n", name.c_str());
    return rec;
  }
  rec.annealer_costs = incumbent->costs;

  search::SearchOptions sopt;  // single thread: deterministic exploration
  const search::SearchResult blind = search::ColumnarSearchSolver(sopt).solve(problem);
  rec.search_blind = searchFigures(blind);

  driver::SharedIncumbent channel(problem);
  channel.publish(incumbent->plan, incumbent->costs, "annealer");
  sopt.incumbent = &channel;
  const search::SearchResult seeded = search::ColumnarSearchSolver(sopt).solve(problem);
  rec.search_seeded = searchFigures(seeded);

  if (measure_milp) {
    rec.milp_measured = true;
    const auto milpRun = [&](driver::SharedIncumbent* chan) {
      fp::MilpFloorplannerOptions mopt;
      mopt.algorithm = fp::Algorithm::kO;
      mopt.lexicographic = problem.lexicographic();
      mopt.time_limit_seconds = milp_budget;
      mopt.incumbent = chan;
      const fp::FpResult res = fp::MilpFloorplanner(mopt).solve(problem);
      SolveFigures f;
      f.nodes = res.nodes;
      f.seconds = res.seconds;
      f.status = fp::toString(res.status);
      f.adopted = res.adopted;
      f.external_prunes = res.external_prunes;
      return f;
    };
    rec.milp_blind = milpRun(nullptr);
    driver::SharedIncumbent milp_channel(problem);
    milp_channel.publish(incumbent->plan, incumbent->costs, "annealer");
    rec.milp_seeded = milpRun(&milp_channel);
  }

  // ---- staged experiment: cooperative portfolio vs blind flat race --------
  const driver::Driver drv;
  driver::SolveRequest req;
  req.deadline_seconds = portfolio_deadline;
  req.annealer.iterations = annealer_iterations;
  const auto portfolioFigures = [](const driver::SolveResponse& res) {
    PortfolioFigures f;
    f.status = driver::toString(res.status);
    f.winner = res.hasSolution() || res.status == driver::SolveStatus::kInfeasible
                   ? driver::toString(res.backend)
                   : "-";
    if (res.hasSolution()) {
      f.waste = res.costs.wasted_frames;
      f.wire_length = res.costs.wire_length;
    }
    f.seconds = res.seconds;
    f.stage1_seconds = res.incumbent.stage1_seconds;
    f.adoptions = res.incumbent.adoptions;
    f.cutoff_prunes = res.incumbent.cutoff_prunes;
    return f;
  };
  req.incumbent_exchange = false;
  req.staged_deadlines = false;
  const driver::SolveResponse flat = drv.solvePortfolio(problem, req);
  rec.flat = portfolioFigures(flat);
  req.incumbent_exchange = true;
  req.staged_deadlines = true;
  const driver::SolveResponse staged = drv.solvePortfolio(problem, req);
  rec.staged = portfolioFigures(staged);
  rec.staged_not_worse =
      staged.hasSolution() &&
      (!flat.hasSolution() || !model::strictlyBetter(problem, flat.costs, staged.costs));

  return rec;
}

void printRecord(const Record& rec) {
  std::printf("%s: annealer incumbent waste=%ld wl=%.1f (%.2fs)\n", rec.name.c_str(),
              rec.annealer_costs.wasted_frames, rec.annealer_costs.wire_length,
              rec.annealer_seconds);
  std::printf("  search blind : %-10s nodes=%-10ld %8.2fs %12.0f nodes/s\n",
              rec.search_blind.status.c_str(), rec.search_blind.nodes, rec.search_blind.seconds,
              rec.search_blind.nodesPerSec());
  std::printf("  search seeded: %-10s nodes=%-10ld %8.2fs %12.0f nodes/s  "
              "(%.2fx nodes, cutoff-prunes=%ld)\n",
              rec.search_seeded.status.c_str(), rec.search_seeded.nodes,
              rec.search_seeded.seconds, rec.search_seeded.nodesPerSec(), rec.searchNodeRatio(),
              rec.search_seeded.external_prunes);
  if (rec.milp_measured) {
    std::printf("  milp-o blind : %-10s nodes=%-10ld %8.2fs\n", rec.milp_blind.status.c_str(),
                rec.milp_blind.nodes, rec.milp_blind.seconds);
    std::printf("  milp-o seeded: %-10s nodes=%-10ld %8.2fs  (adopted=%ld cutoff-prunes=%ld)\n",
                rec.milp_seeded.status.c_str(), rec.milp_seeded.nodes, rec.milp_seeded.seconds,
                rec.milp_seeded.adopted, rec.milp_seeded.external_prunes);
  }
  std::printf("  portfolio flat  : %-10s winner=%-9s waste=%-6ld %8.2fs\n",
              rec.flat.status.c_str(), rec.flat.winner.c_str(), rec.flat.waste,
              rec.flat.seconds);
  std::printf("  portfolio staged: %-10s winner=%-9s waste=%-6ld %8.2fs "
              "(stage1=%.2fs adoptions=%ld cutoff-prunes=%ld) -> %s\n\n",
              rec.staged.status.c_str(), rec.staged.winner.c_str(), rec.staged.waste,
              rec.staged.seconds, rec.staged.stage1_seconds, rec.staged.adoptions,
              rec.staged.cutoff_prunes, rec.staged_not_worse ? "not worse" : "WORSE");
}

/// `path == nullptr` prints the JSON to stdout only (smoke runs must not
/// overwrite the tracked full-run snapshot at the repo root).
void writeJson(const std::vector<Record>& records, const char* path) {
  io::JsonWriter w;
  w.beginObject();
  bench::writeBenchMeta(w);
  w.key("bench").value("portfolio_incumbent");
  w.key("runs").beginArray();
  for (const Record& rec : records) {
    w.beginObject();
    w.key("name").value(rec.name);
    w.key("annealer_incumbent").beginObject();
    w.key("waste").value(rec.annealer_costs.wasted_frames);
    w.key("wire_length").value(rec.annealer_costs.wire_length);
    w.key("seconds").value(rec.annealer_seconds);
    w.endObject();
    const auto solve_obj = [&w](const char* key, const SolveFigures& f) {
      w.key(key).beginObject();
      w.key("status").value(f.status);
      w.key("nodes").value(f.nodes);
      w.key("seconds").value(f.seconds);
      w.key("nodes_per_sec").value(f.nodesPerSec());
      w.key("adopted").value(f.adopted);
      w.key("cutoff_prunes").value(f.external_prunes);
      w.endObject();
    };
    solve_obj("search_blind", rec.search_blind);
    solve_obj("search_seeded", rec.search_seeded);
    w.key("search_node_ratio").value(rec.searchNodeRatio());
    if (rec.milp_measured) {
      solve_obj("milp_o_blind", rec.milp_blind);
      solve_obj("milp_o_seeded", rec.milp_seeded);
    }
    const auto port_obj = [&w](const char* key, const PortfolioFigures& f) {
      w.key(key).beginObject();
      w.key("status").value(f.status);
      w.key("winner").value(f.winner);
      w.key("waste").value(f.waste);
      w.key("wire_length").value(f.wire_length);
      w.key("seconds").value(f.seconds);
      w.key("stage1_seconds").value(f.stage1_seconds);
      w.key("adoptions").value(f.adoptions);
      w.key("cutoff_prunes").value(f.cutoff_prunes);
      w.endObject();
    };
    port_obj("portfolio_flat", rec.flat);
    port_obj("portfolio_staged", rec.staged);
    w.key("staged_not_worse").value(rec.staged_not_worse);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  if (path) {
    std::ofstream out(path);
    out << w.str() << "\n";
    std::printf("wrote %s\n", path);
  } else {
    std::printf("%s\n", w.str().c_str());
  }
}

std::vector<model::FloorplanProblem> generatedInstances() {
  // Mid-size feasible-by-construction instances with hard relocation
  // requests: big enough that the blind search explores a real tree, small
  // enough for CI seconds. The device must outlive the problems, which only
  // hold a pointer to it.
  static const device::Device dev =
      device::columnarFromPattern("gen", "CCBCCDCCCCBCCCBCCDCC", 8);
  model::GeneratorOptions gopt;
  gopt.num_regions = 5;
  gopt.max_region_width = 5;
  gopt.max_region_height = 4;
  gopt.num_nets = 4;
  gopt.fc_per_region = 1;
  std::vector<model::FloorplanProblem> problems;
  for (std::uint64_t seed = 1; problems.size() < 3 && seed < 60; ++seed) {
    gopt.seed = seed;
    if (auto p = model::generateProblem(dev, gopt)) problems.push_back(std::move(*p));
  }
  return problems;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;

  std::printf("PORTFOLIO INCUMBENT: annealer-seeded cutoffs and staged deadlines\n\n");

  std::vector<Record> records;
  const std::vector<model::FloorplanProblem> generated = generatedInstances();
  for (std::size_t i = 0; i < generated.size(); ++i) {
    records.push_back(runInstance("gen-" + std::to_string(i + 1), generated[i],
                                  /*annealer_iterations=*/20000, /*measure_milp=*/true,
                                  /*milp_budget=*/smoke ? 5.0 : 30.0,
                                  /*portfolio_deadline=*/smoke ? 8.0 : 20.0));
    printRecord(records.back());
  }

  if (!smoke) {
    // The paper's SDR2 relocation workload (Sec. VI): the annealer incumbent
    // seeds the exact search's cutoff on a paper-scale tree.
    const device::Device dev = device::virtex5FX70T();
    model::FloorplanProblem sdr2 = model::makeSdrProblem(dev);
    model::addSdrRelocations(sdr2, 2);
    records.push_back(runInstance("SDR2", sdr2, /*annealer_iterations=*/200000,
                                  /*measure_milp=*/false, /*milp_budget=*/0.0,
                                  /*portfolio_deadline=*/60.0));
    printRecord(records.back());
  }

  writeJson(records, smoke ? nullptr : "BENCH_portfolio_incumbent.json");

  // CI guard: the single-threaded seeded search explores a subset of the
  // blind run's tree by construction — more nodes means the cutoff plumbing
  // regressed. The staged-vs-flat quality comparison is reported but only
  // warns: both sides are wall-clock races, so on a loaded runner the flat
  // run can luck into a better plan without any code regression.
  bool ok = true;
  for (const Record& rec : records) {
    if (rec.search_seeded.nodes > rec.search_blind.nodes) {
      std::fprintf(stderr, "FAIL %s: seeded search explored %ld nodes > blind %ld\n",
                   rec.name.c_str(), rec.search_seeded.nodes, rec.search_blind.nodes);
      ok = false;
    }
    if (!rec.staged_not_worse)
      std::fprintf(stderr, "WARN %s: staged portfolio returned a worse floorplan than the "
                   "flat race this run\n", rec.name.c_str());
  }
  return ok ? 0 : 1;
}
