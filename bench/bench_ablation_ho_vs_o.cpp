// Ablation B: O vs HO (Sec. I / [10]) on MILP-tractable instances — quality
// vs runtime of the full MILP against the sequence-pair-restricted MILP,
// with the exact search optimum as the reference.
#include <cstdio>

#include "device/builders.hpp"
#include "fp/milp_floorplanner.hpp"
#include "model/floorplan.hpp"
#include "search/solver.hpp"
#include "support/timer.hpp"

namespace {

struct Instance {
  const char* name;
  rfp::device::Device dev;
  rfp::model::FloorplanProblem problem;
};

}  // namespace

int main() {
  using namespace rfp;

  std::printf("ABLATION B: O (full MILP) vs HO (sequence-pair restricted MILP)\n");
  std::printf("reference = exact search optimum; both flows run the from-scratch\n");
  std::printf("branch-and-bound solver (DESIGN.md substitution 1)\n\n");
  std::printf("%-12s %-4s %14s %12s %10s %8s\n", "instance", "alg", "wasted frames",
              "wire length", "status", "time[s]");

  const auto run_instance = [&](const char* name, const device::Device& /*dev*/,
                                model::FloorplanProblem& problem) {
    const search::SearchResult ref = search::ColumnarSearchSolver().solve(problem);
    std::printf("%-12s %-4s %14ld %12.1f %10s %8s\n", name, "ref",
                ref.costs.wasted_frames, ref.costs.wire_length,
                search::toString(ref.status), "-");
    for (const fp::Algorithm alg : {fp::Algorithm::kO, fp::Algorithm::kHO}) {
      fp::MilpFloorplannerOptions opt;
      opt.algorithm = alg;
      opt.milp.time_limit_seconds = 60;
      Stopwatch watch;
      const fp::FpResult res = fp::MilpFloorplanner(opt).solve(problem);
      if (res.hasSolution())
        std::printf("%-12s %-4s %14ld %12.1f %10s %8.3f\n", name,
                    alg == fp::Algorithm::kO ? "O" : "HO", res.costs.wasted_frames,
                    res.costs.wire_length, fp::toString(res.status), watch.seconds());
      else
        std::printf("%-12s %-4s (no solution: %s) %8.3f\n", name,
                    alg == fp::Algorithm::kO ? "O" : "HO", fp::toString(res.status),
                    watch.seconds());
    }
  };

  {
    device::Device dev = device::columnarFromPattern("small", "CCBCC", 3);
    model::FloorplanProblem p(&dev);
    p.addRegion(model::RegionSpec{"a", {2, 1, 0}});
    p.addRegion(model::RegionSpec{"b", {2, 0, 0}});
    p.addNet(model::Net{{0, 1}, 1.0, "n"});
    run_instance("small", dev, p);
  }
  {
    device::Device dev = device::columnarFromPattern("medium", "CCBCCDCC", 4);
    model::FloorplanProblem p(&dev);
    p.addRegion(model::RegionSpec{"a", {3, 1, 0}});
    p.addRegion(model::RegionSpec{"b", {2, 0, 1}});
    p.addRegion(model::RegionSpec{"c", {2, 0, 0}});
    p.addNet(model::Net{{0, 1}, 2.0, "n1"});
    p.addNet(model::Net{{1, 2}, 2.0, "n2"});
    run_instance("medium", dev, p);
  }
  {
    device::Device dev = device::columnarFromPattern("reloc", "CCBCCBCC", 4);
    model::FloorplanProblem p(&dev);
    p.addRegion(model::RegionSpec{"a", {2, 1, 0}});
    p.addRegion(model::RegionSpec{"b", {2, 0, 0}});
    p.addRelocation(model::RelocationRequest{0, 1, true, 1.0});
    run_instance("reloc", dev, p);
  }

  std::printf("\nexpected shape: HO is faster than O (restricted search space) at\n");
  std::printf("equal or slightly worse cost — the [10]/paper trade-off.\n");
  return 0;
}
