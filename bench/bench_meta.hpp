// Shared `meta` block for the bench JSON emitters.
//
// Every BENCH_*.json used to carry figures with no record of what produced
// them — comparing two artifacts meant trusting filenames and CI run dates.
// `writeBenchMeta` stamps the provenance that actually changes numbers:
// the git commit (RFP_GIT_SHA, a configure-time compile definition), the
// compiler, the sanitizer mode (a TSan build's figures are not comparable
// to a release build's), and the machine's core count (throughput gates and
// steal figures are core-count-dependent).
//
// Usage, right after beginObject() in each bench's JSON writer:
//   io::JsonWriter w;
//   w.beginObject();
//   bench::writeBenchMeta(w);
//   ...
#pragma once

#include <thread>

#include "io/json.hpp"

#ifndef RFP_GIT_SHA
#define RFP_GIT_SHA "unknown"
#endif
#ifndef RFP_SANITIZE_MODE
#define RFP_SANITIZE_MODE "OFF"
#endif

namespace rfp::bench {

inline const char* compilerString() noexcept {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

inline void writeBenchMeta(io::JsonWriter& w) {
  w.key("meta").beginObject();
  w.key("git_sha").value(RFP_GIT_SHA);
  w.key("compiler").value(compilerString());
  w.key("sanitizer").value(RFP_SANITIZE_MODE);
  w.key("hardware_threads").value(static_cast<long>(std::thread::hardware_concurrency()));
#ifdef NDEBUG
  w.key("assertions").value(false);
#else
  w.key("assertions").value(true);
#endif
  w.endObject();
}

}  // namespace rfp::bench
