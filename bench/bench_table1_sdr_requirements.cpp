// Regenerates Table I: resource requirements for the SDR design, in tiles
// per type plus the minimum configuration-frame footprint of each region.
//
// Paper values (IPDPSW'15, Table I):
//   matched filter   25 CLB  0 BRAM  5 DSP  1040 frames
//   carrier recovery  7 CLB  0 BRAM  1 DSP   280 frames
//   demodulator       5 CLB  2 BRAM  0 DSP   240 frames
//   signal decoder   12 CLB  1 BRAM  0 DSP   462 frames
//   video decoder    55 CLB  2 BRAM  5 DSP  2180 frames
//   total           104 CLB  5 BRAM 11 DSP  4202 frames
#include <cstdio>

#include "device/builders.hpp"
#include "model/problem.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  const model::FloorplanProblem sdr = model::makeSdrProblem(dev);

  std::printf("TABLE I: Resource requirements for the SDR design (%s)\n", dev.name().c_str());
  std::printf("frames per tile: CLB=%d BRAM=%d DSP=%d\n\n",
              dev.tileType(dev.tileTypeId("CLB")).frames,
              dev.tileType(dev.tileTypeId("BRAM")).frames,
              dev.tileType(dev.tileTypeId("DSP")).frames);
  std::printf("%-18s %9s %10s %9s %9s\n", "Region", "CLB tiles", "BRAM tiles", "DSP tiles",
              "# Frames");

  int total[3] = {0, 0, 0};
  long total_frames = 0;
  for (int n = 0; n < sdr.numRegions(); ++n) {
    const model::RegionSpec& r = sdr.region(n);
    std::printf("%-18s %9d %10d %9d %9ld\n", r.name.c_str(), r.required(0), r.required(1),
                r.required(2), sdr.minFrames(n));
    for (int t = 0; t < 3; ++t) total[t] += r.required(t);
    total_frames += sdr.minFrames(n);
  }
  std::printf("%-18s %9d %10d %9d %9ld\n", "Total", total[0], total[1], total[2], total_frames);

  const bool match = total[0] == 104 && total[1] == 5 && total[2] == 11 && total_frames == 4202;
  std::printf("\npaper Table I totals (104/5/11, 4202 frames): %s\n",
              match ? "REPRODUCED" : "MISMATCH");
  return match ? 0 : 1;
}
