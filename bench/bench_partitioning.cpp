// Regenerates the Sec. III concepts (Figs. 2–3): columnar partitioning of
// the FX70T model, the portion set P / forbidden set A split, and the
// Figure-3 offset/intersection semantics for a sample region placement.
#include <cstdio>

#include "device/builders.hpp"
#include "partition/columnar.hpp"
#include "render/render.hpp"
#include "support/timer.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();

  std::printf("COLUMNAR PARTITIONING (Sec. III-B, Fig. 2) on %s\n\n", dev.name().c_str());
  std::printf("%s\n", render::asciiDevice(dev).c_str());

  Stopwatch watch;
  const auto part = partition::columnarPartition(dev);
  const double seconds = watch.seconds();
  if (!part) {
    std::printf("device is not columnar-partitionable\n");
    return 1;
  }
  std::printf("P (portions, left to right — Property .4):\n");
  for (const partition::Portion& p : part->portions)
    std::printf("  portion %2d: columns [%2d, %2d)  type %s  width %d\n", p.id, p.x, p.x2(),
                dev.tileType(p.type).name.c_str(), p.w);
  std::printf("A (forbidden areas, Step 6):\n");
  for (std::size_t f = 0; f < part->forbidden.size(); ++f)
    std::printf("  %s: %s\n", part->forbidden_labels[f].c_str(),
                part->forbidden[f].toString().c_str());
  std::printf("\n|P| = %zu, |A| = %zu, nTypes = %d, partitioned in %.6fs\n",
              part->portions.size(), part->forbidden.size(), part->numTypes(), seconds);
  const std::string err = partition::validateColumnarPartition(dev, *part);
  std::printf("Properties .3/.4: %s\n", err.empty() ? "HOLD" : err.c_str());

  // Fig. 3: k/o variable semantics for a sample region across portions.
  std::printf("\nFIG 3: offset variables for a region at columns [6, 12)\n");
  std::printf("%8s %12s %6s %6s\n", "portion", "columns", "k_n_p", "o_n_p");
  const int rx = 6, rw = 6;
  bool seen_first = false;
  for (const partition::Portion& p : part->portions) {
    const bool intersects = rx < p.x2() && p.x < rx + rw;
    const bool first = intersects && !seen_first;
    seen_first = seen_first || intersects;
    std::printf("%8d %6d..%-5d %6d %6d\n", p.id, p.x, p.x2() - 1, intersects ? 1 : 0,
                first ? 1 : 0);
  }
  return err.empty() ? 0 : 1;
}
