// LP substrate bench: dense tableau vs sparse revised simplex on the
// paper-scale SDR2/SDR3 MILP formulations.
//
// The dense engine cannot run at this scale (its tableau is ~25 GiB on SDR2,
// ~54 GiB on SDR3 — exactly why `max_lp_gib` used to decline these
// formulations), so the bench reports the dense side as the memory estimate
// it would need, measures dense-vs-sparse wall time head-to-head on a
// smaller generated formulation where both fit, and then solves the SDR
// root relaxations on the sparse engine with a peak-RSS proxy
// (getrusage ru_maxrss) to show they stay in the tens-of-MiB range.
//
// Output: human-readable table plus one JSON document on stdout (between
// BEGIN-JSON / END-JSON markers) for downstream tooling.
//
// Usage: bench_lp_sparse [--smoke]
//   --smoke  only the small generated formulation (for CI: seconds, not
//            minutes, and still fails loudly if an engine regresses).
#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "device/builders.hpp"
#include "fp/formulation.hpp"
#include "io/json.hpp"
#include "lp/lp_solver.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/revised_simplex.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "partition/columnar.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

long peakRssMib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

struct RunRecord {
  std::string name;
  std::string engine;
  int vars = 0, constrs = 0;
  long nnz = 0;
  double est_gib = 0.0;
  std::string status;
  double objective = 0.0;
  long iterations = 0;
  long refactorizations = 0;
  double seconds = 0.0;
  long peak_rss_mib = 0;
  bool executed = false;  ///< false: engine skipped, est_gib is the story
};

void printRecord(const RunRecord& r) {
  if (r.executed) {
    std::printf("%-10s %-7s %6d x %-6d nnz=%-8ld %-10s obj=%-12.4f iters=%-7ld refac=%-4ld %7.2fs peak=%ld MiB\n",
                r.name.c_str(), r.engine.c_str(), r.constrs, r.vars, r.nnz, r.status.c_str(),
                r.objective, r.iterations, r.refactorizations, r.seconds, r.peak_rss_mib);
  } else {
    std::printf("%-10s %-7s %6d x %-6d nnz=%-8ld not run: would need ~%.1f GiB\n",
                r.name.c_str(), r.engine.c_str(), r.constrs, r.vars, r.nnz, r.est_gib);
  }
}

RunRecord solveWith(const std::string& name, const lp::Model& m, lp::LpEngine engine,
                    double time_limit) {
  RunRecord rec;
  rec.name = name;
  rec.engine = lp::toString(engine);
  rec.vars = m.numVars();
  rec.constrs = m.numConstrs();
  rec.nnz = lp::sparse::countNonzeros(m);
  rec.est_gib = engine == lp::LpEngine::kSparse ? lp::LpSolver::sparseFootprintGib(m)
                                                : lp::LpSolver::denseTableauGib(m);
  lp::LpSolver::Options opt;
  opt.engine = engine;
  opt.core.max_iterations = 2000000;
  opt.core.time_limit_seconds = time_limit;
  Stopwatch watch;
  const lp::LpResult r = lp::LpSolver(opt).solve(m);
  rec.status = lp::toString(r.status);
  rec.objective = r.objective;
  rec.iterations = r.iterations;
  rec.refactorizations = r.refactorizations;
  rec.seconds = watch.seconds();
  rec.peak_rss_mib = peakRssMib();
  rec.executed = true;
  return rec;
}

RunRecord skipRecord(const std::string& name, const lp::Model& m, lp::LpEngine engine) {
  RunRecord rec;
  rec.name = name;
  rec.engine = lp::toString(engine);
  rec.vars = m.numVars();
  rec.constrs = m.numConstrs();
  rec.nnz = lp::sparse::countNonzeros(m);
  rec.est_gib = engine == lp::LpEngine::kSparse ? lp::LpSolver::sparseFootprintGib(m)
                                                : lp::LpSolver::denseTableauGib(m);
  return rec;
}

void writeJson(const std::vector<RunRecord>& records) {
  io::JsonWriter w;
  w.beginObject();
  w.key("bench").value("lp_sparse");
  w.key("runs").beginArray();
  for (const RunRecord& r : records) {
    w.beginObject();
    w.key("name").value(r.name);
    w.key("engine").value(r.engine);
    w.key("vars").value(r.vars);
    w.key("constrs").value(r.constrs);
    w.key("nnz").value(r.nnz);
    w.key("estimated_gib").value(r.est_gib);
    w.key("executed").value(r.executed);
    if (r.executed) {
      w.key("status").value(r.status);
      w.key("objective").value(r.objective);
      w.key("iterations").value(r.iterations);
      w.key("refactorizations").value(r.refactorizations);
      w.key("seconds").value(r.seconds);
      w.key("peak_rss_mib").value(r.peak_rss_mib);
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  std::printf("BEGIN-JSON\n%s\nEND-JSON\n", w.str().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  std::vector<RunRecord> records;
  bool ok = true;
  const device::Device dev = device::virtex5FX70T();
  const auto part = partition::columnarPartition(dev);
  if (!part) {
    std::fprintf(stderr, "device not partitionable\n");
    return 1;
  }

  // ---- head-to-head where both engines fit: a generated formulation ----
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.num_nets = 2;
  for (gopt.seed = 1; gopt.seed < 32; ++gopt.seed)
    if (model::generateProblem(dev, gopt)) break;
  const auto small = model::generateProblem(dev, gopt);
  if (!small) {
    std::fprintf(stderr, "generator failed\n");
    return 1;
  }
  fp::MilpFormulation small_form(*small, *part, {});
  const RunRecord sd = solveWith("gen-small", small_form.model(), lp::LpEngine::kDense, 120);
  const RunRecord ss = solveWith("gen-small", small_form.model(), lp::LpEngine::kSparse, 120);
  printRecord(sd);
  printRecord(ss);
  records.push_back(sd);
  records.push_back(ss);
  if (sd.status != "optimal" || ss.status != "optimal") {
    std::printf("REGRESSION: gen-small must solve to optimality on both engines "
                "(dense=%s sparse=%s)\n",
                sd.status.c_str(), ss.status.c_str());
    ok = false;
  } else if (std::abs(sd.objective - ss.objective) > 1e-5 * (1 + std::abs(sd.objective))) {
    std::printf("MISMATCH: dense and sparse disagree on gen-small\n");
    ok = false;
  }

  // ---- paper scale: sparse solves, dense is reported as an estimate ----
  if (!smoke) {
    for (const int reloc : {2, 3}) {
      model::FloorplanProblem sdr = model::makeSdrProblem(dev);
      model::addSdrRelocations(sdr, reloc);
      fp::MilpFormulation form(sdr, *part, {});
      const std::string name = "SDR" + std::to_string(reloc);
      const RunRecord dense_est = skipRecord(name, form.model(), lp::LpEngine::kDense);
      printRecord(dense_est);
      records.push_back(dense_est);
      const RunRecord sparse_run =
          solveWith(name, form.model(), lp::LpEngine::kSparse, 1200);
      printRecord(sparse_run);
      records.push_back(sparse_run);
      ok = ok && sparse_run.status == "optimal";
      // The headline claim: paper-scale root relaxations in < 2 GiB resident.
      if (sparse_run.peak_rss_mib > 2048) {
        std::printf("REGRESSION: %s sparse root relaxation exceeded 2 GiB resident\n",
                    name.c_str());
        ok = false;
      }
    }
  }

  writeJson(records);
  std::printf("%s\n", ok ? "BENCH OK" : "BENCH FAILED");
  return ok ? 0 : 1;
}
