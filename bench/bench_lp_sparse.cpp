// LP substrate bench: dense tableau vs sparse revised simplex on the
// paper-scale SDR2/SDR3 MILP formulations.
//
// The dense engine cannot run at this scale (its tableau is ~25 GiB on SDR2,
// ~54 GiB on SDR3 — exactly why `max_lp_gib` used to decline these
// formulations), so the bench reports the dense side as the memory estimate
// it would need, measures dense-vs-sparse wall time head-to-head on a
// smaller generated formulation where both fit, and then solves the SDR
// root relaxations on the sparse engine with a peak-RSS proxy
// (getrusage ru_maxrss) to show they stay in the tens-of-MiB range.
//
// Output: human-readable table plus one JSON document on stdout (between
// BEGIN-JSON / END-JSON markers) for downstream tooling.
//
// Usage: bench_lp_sparse [--smoke] [--reopt]
//   --smoke  only the small generated formulation (for CI: seconds, not
//            minutes, and still fails loudly if an engine regresses).
//   --reopt  warm node-reoptimization throughput instead of cold solves:
//            the branch & bound pattern (solve the root, then reoptimize a
//            sequence of single-bound-change child nodes from the root
//            basis) timed over the dual fast path vs the primal warm path.
//            Writes BENCH_lp_reopt.json into the current directory for the
//            perf trajectory, and fails if the dual path needs more
//            iterations than the primal path on the same node sequence.
#include <sys/resource.h>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_meta.hpp"
#include "device/builders.hpp"
#include "fp/formulation.hpp"
#include "io/json.hpp"
#include "lp/lp_solver.hpp"
#include "lp/simplex.hpp"
#include "lp/sparse/csc.hpp"
#include "lp/sparse/revised_simplex.hpp"
#include "model/generator.hpp"
#include "model/problem.hpp"
#include "partition/columnar.hpp"
#include "support/timer.hpp"

using namespace rfp;

namespace {

long peakRssMib() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss / 1024;  // Linux reports KiB
}

struct RunRecord {
  std::string name;
  std::string engine;
  int vars = 0, constrs = 0;
  long nnz = 0;
  double est_gib = 0.0;
  std::string status;
  double objective = 0.0;
  long iterations = 0;
  long refactorizations = 0;
  double seconds = 0.0;
  long peak_rss_mib = 0;
  bool executed = false;  ///< false: engine skipped, est_gib is the story
};

void printRecord(const RunRecord& r) {
  if (r.executed) {
    std::printf("%-10s %-7s %6d x %-6d nnz=%-8ld %-10s obj=%-12.4f iters=%-7ld refac=%-4ld %7.2fs peak=%ld MiB\n",
                r.name.c_str(), r.engine.c_str(), r.constrs, r.vars, r.nnz, r.status.c_str(),
                r.objective, r.iterations, r.refactorizations, r.seconds, r.peak_rss_mib);
  } else {
    std::printf("%-10s %-7s %6d x %-6d nnz=%-8ld not run: would need ~%.1f GiB\n",
                r.name.c_str(), r.engine.c_str(), r.constrs, r.vars, r.nnz, r.est_gib);
  }
}

RunRecord solveWith(const std::string& name, const lp::Model& m, lp::LpEngine engine,
                    double time_limit) {
  RunRecord rec;
  rec.name = name;
  rec.engine = lp::toString(engine);
  rec.vars = m.numVars();
  rec.constrs = m.numConstrs();
  rec.nnz = lp::sparse::countNonzeros(m);
  rec.est_gib = engine == lp::LpEngine::kSparse ? lp::LpSolver::sparseFootprintGib(m)
                                                : lp::LpSolver::denseTableauGib(m);
  lp::LpSolver::Options opt;
  opt.engine = engine;
  opt.core.max_iterations = 2000000;
  opt.core.time_limit_seconds = time_limit;
  Stopwatch watch;
  const lp::LpResult r = lp::LpSolver(opt).solve(m);
  rec.status = lp::toString(r.status);
  rec.objective = r.objective;
  rec.iterations = r.iterations;
  rec.refactorizations = r.refactorizations;
  rec.seconds = watch.seconds();
  rec.peak_rss_mib = peakRssMib();
  rec.executed = true;
  return rec;
}

RunRecord skipRecord(const std::string& name, const lp::Model& m, lp::LpEngine engine) {
  RunRecord rec;
  rec.name = name;
  rec.engine = lp::toString(engine);
  rec.vars = m.numVars();
  rec.constrs = m.numConstrs();
  rec.nnz = lp::sparse::countNonzeros(m);
  rec.est_gib = engine == lp::LpEngine::kSparse ? lp::LpSolver::sparseFootprintGib(m)
                                                : lp::LpSolver::denseTableauGib(m);
  return rec;
}

void writeJson(const std::vector<RunRecord>& records) {
  io::JsonWriter w;
  w.beginObject();
  bench::writeBenchMeta(w);
  w.key("bench").value("lp_sparse");
  w.key("runs").beginArray();
  for (const RunRecord& r : records) {
    w.beginObject();
    w.key("name").value(r.name);
    w.key("engine").value(r.engine);
    w.key("vars").value(r.vars);
    w.key("constrs").value(r.constrs);
    w.key("nnz").value(r.nnz);
    w.key("estimated_gib").value(r.est_gib);
    w.key("executed").value(r.executed);
    if (r.executed) {
      w.key("status").value(r.status);
      w.key("objective").value(r.objective);
      w.key("iterations").value(r.iterations);
      w.key("refactorizations").value(r.refactorizations);
      w.key("seconds").value(r.seconds);
      w.key("peak_rss_mib").value(r.peak_rss_mib);
    }
    w.endObject();
  }
  w.endArray();
  w.endObject();
  std::printf("BEGIN-JSON\n%s\nEND-JSON\n", w.str().c_str());
}

// ---- warm node-reoptimization bench (--reopt) ------------------------------

/// One reoptimization path's aggregate over a node sequence.
struct ReoptPathStats {
  double total_seconds = 0.0;
  long iterations = 0;
  long primal_pivots = 0;
  long dual_pivots = 0;
  long bound_flips = 0;
  long ft_updates = 0;
  long refactorizations = 0;
  long dual_reopts = 0;
  long ftran_sparse = 0, ftran_dense = 0;
  long btran_sparse = 0, btran_dense = 0;
  long dse_updates = 0;
  long optimal = 0, infeasible = 0, other = 0;

  [[nodiscard]] long sparseSolves() const { return ftran_sparse + btran_sparse; }

  [[nodiscard]] double meanSeconds(int nodes) const {
    return nodes > 0 ? total_seconds / nodes : 0.0;
  }
  [[nodiscard]] double pivotsPerSec() const {
    const long pivots = primal_pivots + dual_pivots + bound_flips;
    return total_seconds > 0 ? static_cast<double>(pivots) / total_seconds : 0.0;
  }
  [[nodiscard]] double solvesPerSec(int nodes) const {
    return total_seconds > 0 ? nodes / total_seconds : 0.0;
  }
};

struct ReoptRecord {
  std::string name;
  int vars = 0, constrs = 0;
  long nnz = 0;
  int nodes = 0;
  double root_seconds = 0.0;
  long root_iterations = 0;
  ReoptPathStats primal, dual;
  bool agree = true;  ///< both paths reached the same per-node verdicts

  [[nodiscard]] double speedup() const {
    return dual.total_seconds > 0 ? primal.total_seconds / dual.total_seconds : 0.0;
  }
};

void accumulate(ReoptPathStats& stats, const lp::LpResult& r, double seconds,
                std::vector<double>& objectives) {
  stats.total_seconds += seconds;
  stats.iterations += r.iterations;
  stats.primal_pivots += r.primal_pivots;
  stats.dual_pivots += r.dual_pivots;
  stats.bound_flips += r.bound_flips;
  stats.ft_updates += r.ft_updates;
  stats.refactorizations += r.refactorizations;
  stats.dual_reopts += r.dual_reopt ? 1 : 0;
  stats.ftran_sparse += r.ftran_sparse;
  stats.ftran_dense += r.ftran_dense;
  stats.btran_sparse += r.btran_sparse;
  stats.btran_dense += r.btran_dense;
  stats.dse_updates += r.dse_updates;
  if (r.status == lp::LpStatus::kOptimal) {
    ++stats.optimal;
    objectives.push_back(r.objective);
  } else if (r.status == lp::LpStatus::kInfeasible) {
    ++stats.infeasible;
    objectives.push_back(1e300);  // sentinel: both paths must agree on it
  } else {
    ++stats.other;
    objectives.push_back(-1e300);
  }
}

/// Root solve + a branch & bound style dive replayed over both reopt paths.
///
/// The dive mirrors what `milp/bb.cpp` plunging does: each node tightens
/// one fractional integer variable toward its nearest integer (cumulative
/// bounds) and reoptimizes from the *previous* node's optimal basis. The
/// dual path runs through the persistent `DualReoptimizer` (live factors,
/// the B&B default); the primal path replays the identical bound sequence
/// through warm primal solves (the PR 2 behavior).
ReoptRecord runReoptBench(const std::string& name, const lp::Model& m, int max_nodes) {
  ReoptRecord rec;
  rec.name = name;
  rec.vars = m.numVars();
  rec.constrs = m.numConstrs();
  rec.nnz = lp::sparse::countNonzeros(m);

  const auto csc =
      std::make_shared<const lp::sparse::CscMatrix>(lp::sparse::CscMatrix::fromModel(m));
  std::vector<double> lb0(static_cast<std::size_t>(m.numVars()));
  std::vector<double> ub0(static_cast<std::size_t>(m.numVars()));
  for (int j = 0; j < m.numVars(); ++j) {
    lb0[static_cast<std::size_t>(j)] = m.var(j).lb;
    ub0[static_cast<std::size_t>(j)] = m.var(j).ub;
  }
  lp::LpSolver::Options opt;
  opt.engine = lp::LpEngine::kSparse;
  opt.core.max_iterations = 2000000;
  opt.core.time_limit_seconds = 1200;
  Stopwatch root_watch;
  const lp::LpResult root = lp::LpSolver(opt).solve(m, lb0, ub0, nullptr, csc.get());
  rec.root_seconds = root_watch.seconds();
  rec.root_iterations = root.iterations;
  if (root.status != lp::LpStatus::kOptimal || !root.basis) {
    std::printf("%-10s root relaxation did not solve (%s) — skipping reopt\n",
                name.c_str(), lp::toString(root.status));
    rec.agree = false;
    return rec;
  }

  const auto firstFractional = [&m](const std::vector<double>& x) {
    for (int j = 0; j < m.numVars(); ++j) {
      if (m.var(j).type == lp::VarType::kContinuous) continue;
      const double frac =
          x[static_cast<std::size_t>(j)] - std::floor(x[static_cast<std::size_t>(j)]);
      if (frac > 1e-6 && frac < 1.0 - 1e-6) return j;
    }
    return -1;
  };

  // ---- dual path: dive through the persistent reoptimizer ----
  lp::sparse::DualSimplexSolver::Options dopt;
  dopt.core = opt.core;
  dopt.core.time_limit_seconds = 600;
  lp::sparse::DualReoptimizer reopt(m, csc, dopt);
  lp::LpSolver::Options fallback_opt = opt;
  fallback_opt.core.time_limit_seconds = 600;
  fallback_opt.dual_reopt = false;

  std::vector<std::pair<std::vector<double>, std::vector<double>>> dive;  // bound vectors
  std::vector<double> dual_obj;
  std::vector<double> lb = lb0, ub = ub0;
  std::shared_ptr<const lp::sparse::Basis> basis = root.basis;
  std::vector<double> x = root.x;
  while (static_cast<int>(dive.size()) < max_nodes) {
    const int j = firstFractional(x);
    if (j < 0) break;
    const double v = x[static_cast<std::size_t>(j)];
    const double frac = v - std::floor(v);
    if (frac <= 0.5)
      ub[static_cast<std::size_t>(j)] = std::floor(v);  // plunge down
    else
      lb[static_cast<std::size_t>(j)] = std::floor(v) + 1.0;  // plunge up
    dive.emplace_back(lb, ub);
    Stopwatch watch;
    lp::LpResult declined;
    std::optional<lp::LpResult> r = reopt.reoptimize(lb, ub, basis, 600, &declined);
    if (!r) {
      r = lp::LpSolver(fallback_opt).solve(m, lb, ub, basis.get(), csc.get());
      // The abandoned dual attempt's work belongs to the dual path's bill —
      // the iteration-count regression guard must not compare undercounts.
      r->iterations += declined.iterations;
      r->dual_pivots += declined.dual_pivots;
      r->bound_flips += declined.bound_flips;
      r->ft_updates += declined.ft_updates;
      r->refactorizations += declined.refactorizations;
    }
    accumulate(rec.dual, *r, watch.seconds(), dual_obj);
    if (r->status != lp::LpStatus::kOptimal) break;  // dive hit a dead end
    basis = r->basis;
    x = r->x;
  }
  rec.nodes = static_cast<int>(dive.size());
  if (dive.empty()) {
    rec.agree = false;
    return rec;
  }

  // ---- primal path: identical bound sequence, warm primal solves ----
  std::vector<double> primal_obj;
  basis = root.basis;
  for (const auto& [dlb, dub] : dive) {
    Stopwatch watch;
    const lp::LpResult r =
        lp::LpSolver(fallback_opt).solve(m, dlb, dub, basis.get(), csc.get());
    accumulate(rec.primal, r, watch.seconds(), primal_obj);
    if (r.status != lp::LpStatus::kOptimal) break;
    basis = r.basis;
  }

  const std::size_t common = std::min(dual_obj.size(), primal_obj.size());
  rec.agree = dual_obj.size() == primal_obj.size();
  for (std::size_t i = 0; i < common; ++i)
    if (std::abs(dual_obj[i] - primal_obj[i]) > 1e-5 * (1.0 + std::abs(primal_obj[i])))
      rec.agree = false;
  return rec;
}

void printReopt(const ReoptRecord& r) {
  std::printf("%-10s %d nodes (root %.2fs/%ld iters)\n", r.name.c_str(), r.nodes,
              r.root_seconds, r.root_iterations);
  std::printf("  primal-warm: mean=%.4fs solves/s=%.1f pivots/s=%.0f iters=%ld "
              "(pivots=%ld flips=%ld ft=%ld refac=%ld)\n",
              r.primal.meanSeconds(r.nodes), r.primal.solvesPerSec(r.nodes),
              r.primal.pivotsPerSec(), r.primal.iterations, r.primal.primal_pivots,
              r.primal.bound_flips, r.primal.ft_updates, r.primal.refactorizations);
  std::printf("  dual-warm:   mean=%.4fs solves/s=%.1f pivots/s=%.0f iters=%ld "
              "(pivots=%ld flips=%ld ft=%ld refac=%ld dual-reopts=%ld/%d)\n",
              r.dual.meanSeconds(r.nodes), r.dual.solvesPerSec(r.nodes),
              r.dual.pivotsPerSec(), r.dual.iterations, r.dual.dual_pivots,
              r.dual.bound_flips, r.dual.ft_updates, r.dual.refactorizations,
              r.dual.dual_reopts, r.nodes);
  std::printf("  dual kernel: ftran=%ld/%ld btran=%ld/%ld (sparse/dense) dse-updates=%ld\n",
              r.dual.ftran_sparse, r.dual.ftran_dense, r.dual.btran_sparse,
              r.dual.btran_dense, r.dual.dse_updates);
  std::printf("  speedup (mean node-solve, primal/dual): %.2fx%s\n", r.speedup(),
              r.agree ? "" : "  [MISMATCH]");
}

/// `path == nullptr` prints the JSON to stdout only (smoke runs must not
/// overwrite the tracked full-run snapshot at the repo root).
void writeReoptJson(const std::vector<ReoptRecord>& records, const char* path) {
  io::JsonWriter w;
  w.beginObject();
  bench::writeBenchMeta(w);
  w.key("bench").value("lp_reopt");
  w.key("runs").beginArray();
  for (const ReoptRecord& r : records) {
    w.beginObject();
    w.key("name").value(r.name);
    w.key("vars").value(r.vars);
    w.key("constrs").value(r.constrs);
    w.key("nnz").value(r.nnz);
    w.key("nodes").value(r.nodes);
    w.key("root_seconds").value(r.root_seconds);
    w.key("root_iterations").value(r.root_iterations);
    const auto path_obj = [&w, &r](const char* key, const ReoptPathStats& s) {
      w.key(key).beginObject();
      w.key("mean_node_seconds").value(s.meanSeconds(r.nodes));
      w.key("total_seconds").value(s.total_seconds);
      w.key("solves_per_sec").value(s.solvesPerSec(r.nodes));
      w.key("pivots_per_sec").value(s.pivotsPerSec());
      w.key("iterations").value(s.iterations);
      w.key("primal_pivots").value(s.primal_pivots);
      w.key("dual_pivots").value(s.dual_pivots);
      w.key("bound_flips").value(s.bound_flips);
      w.key("ft_updates").value(s.ft_updates);
      w.key("refactorizations").value(s.refactorizations);
      w.key("dual_reopts").value(s.dual_reopts);
      w.key("ftran_sparse").value(s.ftran_sparse);
      w.key("ftran_dense").value(s.ftran_dense);
      w.key("btran_sparse").value(s.btran_sparse);
      w.key("btran_dense").value(s.btran_dense);
      w.key("dse_updates").value(s.dse_updates);
      w.key("optimal").value(s.optimal);
      w.key("infeasible").value(s.infeasible);
      w.endObject();
    };
    path_obj("primal_warm", r.primal);
    path_obj("dual_warm", r.dual);
    w.key("speedup_mean_node_solve").value(r.speedup());
    w.key("agree").value(r.agree);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  if (path) {
    if (std::FILE* f = std::fopen(path, "w")) {
      std::fputs(w.str().c_str(), f);
      std::fputc('\n', f);
      std::fclose(f);
      std::printf("wrote %s\n", path);
    } else {
      std::printf("WARNING: could not write %s\n", path);
    }
  }
  std::printf("BEGIN-JSON\n%s\nEND-JSON\n", w.str().c_str());
}

int runReoptMode(bool smoke, const device::Device& dev,
                 const partition::ColumnarPartition& part) {
  std::vector<ReoptRecord> records;
  bool ok = true;

  {
    model::GeneratorOptions gopt;
    gopt.num_regions = 3;
    gopt.num_nets = 2;
    for (gopt.seed = 1; gopt.seed < 32; ++gopt.seed)
      if (model::generateProblem(dev, gopt)) break;
    const auto small = model::generateProblem(dev, gopt);
    if (!small) {
      std::fprintf(stderr, "generator failed\n");
      return 1;
    }
    fp::MilpFormulation form(*small, part, {});
    const ReoptRecord rec = runReoptBench("gen-small", form.model(), 12);
    printReopt(rec);
    ok = ok && rec.agree && rec.nodes > 0;
    // Satellite guard: the dual fast path must not need more iterations
    // than the primal warm path on the same node sequence.
    if (rec.dual.iterations > rec.primal.iterations) {
      std::printf("REGRESSION: dual warm reopt used more iterations (%ld) than the "
                  "primal warm path (%ld) on gen-small\n",
                  rec.dual.iterations, rec.primal.iterations);
      ok = false;
    }
    // Warm reopts perturb ~1 bound, so their triangular solves must go
    // through the hyper-sparse kernel — zero sparse solves means the
    // density gate silently regressed to the dense sweeps.
    if (rec.dual.sparseSolves() == 0) {
      std::printf("REGRESSION: hyper-sparse solve path never taken on %s\n",
                  rec.name.c_str());
      ok = false;
    }
    records.push_back(rec);
  }

  if (!smoke) {
    for (const int reloc : {2, 3}) {
      model::FloorplanProblem sdr = model::makeSdrProblem(dev);
      model::addSdrRelocations(sdr, reloc);
      fp::MilpFormulation form(sdr, part, {});
      const ReoptRecord rec =
          runReoptBench("SDR" + std::to_string(reloc), form.model(), 24);
      printReopt(rec);
      ok = ok && rec.agree && rec.nodes > 0;
      // At paper scale wall time is the verdict (dual pivots are far
      // cheaper than primal ones — no per-node refactorizations — so raw
      // iteration counts are not comparable). SDR2 carries the headline
      // hyper-sparse bar (3.2x mean node-solve improvement); SDR3's
      // hyper-degenerate nodes used to defeat dual Devex row pricing and
      // fall back to the primal engine — exact dual steepest edge keeps
      // them on the fast path, so SDR3 now holds the 2x acceptance bar.
      const double bar = reloc == 2 ? 3.2 : 2.0;
      if (rec.speedup() < bar) {
        std::printf("REGRESSION: dual warm reopt speedup %.2fx < %.1fx on %s\n",
                    rec.speedup(), bar, rec.name.c_str());
        ok = false;
      }
      if (rec.dual.sparseSolves() == 0) {
        std::printf("REGRESSION: hyper-sparse solve path never taken on %s\n",
                    rec.name.c_str());
        ok = false;
      }
      records.push_back(rec);
    }
  }

  writeReoptJson(records, smoke ? nullptr : "BENCH_lp_reopt.json");
  std::printf("%s\n", ok ? "BENCH OK" : "BENCH FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  bool reopt = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--reopt") == 0) reopt = true;
  }
  const device::Device dev = device::virtex5FX70T();
  const auto part = partition::columnarPartition(dev);
  if (!part) {
    std::fprintf(stderr, "device not partitionable\n");
    return 1;
  }
  if (reopt) return runReoptMode(smoke, dev, *part);
  std::vector<RunRecord> records;
  bool ok = true;

  // ---- head-to-head where both engines fit: a generated formulation ----
  model::GeneratorOptions gopt;
  gopt.num_regions = 3;
  gopt.num_nets = 2;
  for (gopt.seed = 1; gopt.seed < 32; ++gopt.seed)
    if (model::generateProblem(dev, gopt)) break;
  const auto small = model::generateProblem(dev, gopt);
  if (!small) {
    std::fprintf(stderr, "generator failed\n");
    return 1;
  }
  fp::MilpFormulation small_form(*small, *part, {});
  const RunRecord sd = solveWith("gen-small", small_form.model(), lp::LpEngine::kDense, 120);
  const RunRecord ss = solveWith("gen-small", small_form.model(), lp::LpEngine::kSparse, 120);
  printRecord(sd);
  printRecord(ss);
  records.push_back(sd);
  records.push_back(ss);
  if (sd.status != "optimal" || ss.status != "optimal") {
    std::printf("REGRESSION: gen-small must solve to optimality on both engines "
                "(dense=%s sparse=%s)\n",
                sd.status.c_str(), ss.status.c_str());
    ok = false;
  } else if (std::abs(sd.objective - ss.objective) > 1e-5 * (1 + std::abs(sd.objective))) {
    std::printf("MISMATCH: dense and sparse disagree on gen-small\n");
    ok = false;
  }

  // ---- paper scale: sparse solves, dense is reported as an estimate ----
  if (!smoke) {
    for (const int reloc : {2, 3}) {
      model::FloorplanProblem sdr = model::makeSdrProblem(dev);
      model::addSdrRelocations(sdr, reloc);
      fp::MilpFormulation form(sdr, *part, {});
      const std::string name = "SDR" + std::to_string(reloc);
      const RunRecord dense_est = skipRecord(name, form.model(), lp::LpEngine::kDense);
      printRecord(dense_est);
      records.push_back(dense_est);
      const RunRecord sparse_run =
          solveWith(name, form.model(), lp::LpEngine::kSparse, 1200);
      printRecord(sparse_run);
      records.push_back(sparse_run);
      ok = ok && sparse_run.status == "optimal";
      // The headline claim: paper-scale root relaxations in < 2 GiB resident.
      if (sparse_run.peak_rss_mib > 2048) {
        std::printf("REGRESSION: %s sparse root relaxation exceeded 2 GiB resident\n",
                    name.c_str());
        ok = false;
      }
    }
  }

  writeJson(records);
  std::printf("%s\n", ok ? "BENCH OK" : "BENCH FAILED");
  return ok ? 0 : 1;
}
