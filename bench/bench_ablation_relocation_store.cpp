// ABLATION E: what the reserved free-compatible areas buy at run time.
//
// Sweeps the number of FC areas per relocatable region (SDR1..SDR3) and, for
// each floorplan, measures through the reconfiguration simulator:
//   * bitstream store size under the relocation-aware policy vs the
//     per-location policy (the design-reuse benefit, Sec. I),
//   * total filter overhead of a migration-heavy schedule (the cost).
//
// This is an extension experiment of ours, not a paper table: the paper
// motivates relocation qualitatively; this bench puts numbers on it using
// the same device, design and floorplanner as Table II.
#include <cstdio>
#include <vector>

#include "device/builders.hpp"
#include "model/problem.hpp"
#include "reconfig/reconfig.hpp"
#include "search/solver.hpp"

int main() {
  using namespace rfp;
  const device::Device dev = device::virtex5FX70T();
  const std::vector<int> relocatable{model::kCarrierRecovery, model::kDemodulator,
                                     model::kSignalDecoder};

  std::printf("ABLATION E: bitstream store size & switch latency vs FC areas\n");
  std::printf("(SDRk = k free-compatible areas per relocatable region; 3 modes per module)\n\n");
  std::printf("%-6s %-9s %12s %12s %12s %14s %14s\n", "design", "policy", "bitstreams",
              "store[KiB]", "relocations", "filter[us]", "makespan[us]");

  for (int fc = 0; fc <= 3; ++fc) {
    model::FloorplanProblem problem = model::makeSdrProblem(dev);
    if (fc > 0) model::addSdrRelocations(problem, fc);
    search::SearchOptions sopt;
    sopt.num_threads = 8;
    const search::SearchResult sol = search::ColumnarSearchSolver(sopt).solve(problem);
    if (!sol.hasSolution()) {
      std::printf("SDR%d: no floorplan (%s)\n", fc, search::toString(sol.status));
      continue;
    }

    // Migration-heavy schedule: every module cycles its modes over all its
    // targets, 12 rounds.
    for (const reconfig::StorePolicy policy :
         {reconfig::StorePolicy::kRelocationAware, reconfig::StorePolicy::kPerLocation}) {
      reconfig::ReconfigSimulator sim(problem, sol.plan, policy);
      for (const int region : relocatable)
        sim.registerModes(region,
                          {reconfig::ModuleMode{"m0", 0x10 + static_cast<unsigned>(region)},
                           reconfig::ModuleMode{"m1", 0x20 + static_cast<unsigned>(region)},
                           reconfig::ModuleMode{"m2", 0x30 + static_cast<unsigned>(region)}});

      std::vector<reconfig::SwitchRequest> schedule;
      double t = 0.0;
      for (int round = 0; round < 12; ++round)
        for (const int region : relocatable) {
          const int targets = sim.targetCount(region);
          schedule.push_back(reconfig::SwitchRequest{
              t += 20.0, region, "m" + std::to_string(round % 3), round % targets});
        }
      const reconfig::SimulationResult res = sim.run(std::move(schedule));
      std::printf("SDR%-3d %-9s %12ld %12.1f %12ld %14.1f %14.1f\n", fc,
                  policy == reconfig::StorePolicy::kRelocationAware ? "reloc" : "perloc",
                  sim.store().bitstreamCount(),
                  static_cast<double>(sim.store().totalBytes()) / 1024.0,
                  res.stats.relocations, res.stats.total_filter_us,
                  res.stats.makespan_us);
    }
  }

  std::printf(
      "\nexpected shape: per-location storage grows linearly with FC areas\n"
      "(1+k copies per mode); relocation-aware storage is flat at one copy per\n"
      "mode, paying only microseconds of filter time per migration.\n");
  return 0;
}
